//===- Triage.cpp - Pass bisection and bug clustering -----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "triage/Triage.h"

#include "device/Driver.h"
#include "exec/ExecBackend.h"
#include "minicl/AST.h"
#include "minicl/ASTQueries.h"
#include "minicl/Parser.h"
#include "minicl/Sema.h"
#include "opt/Pass.h"
#include "support/Hash.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>

using namespace clfuzz;

namespace {

std::atomic<uint64_t> GTriageWitnesses{0}, GTriageProbes{0},
    GTriageClusters{0};

/// The divergence predicate, identical to the differential oracle's
/// view: a probe "differs" when its outcome class changes or both
/// computed a result with different output fingerprints.
bool differs(const RunOutcome &O, const RunOutcome &Ref) {
  if (O.Status != Ref.Status)
    return true;
  return O.ok() && Ref.ok() && O.OutputHash != Ref.OutputHash;
}

/// The AST feature multiset the cluster signature is built from:
/// binary/unary operator spellings, builtin names and statement
/// kinds. Cheap, printer-independent and stable across structurally
/// different witnesses of the same defect.
std::map<std::string, int64_t> featureCounts(const ASTContext &Ctx) {
  std::map<std::string, int64_t> Counts;
  for (const FunctionDecl *F : Ctx.program().functions()) {
    if (!F->getBody())
      continue;
    forEachExpr(F->getBody(), [&](const Expr *E) {
      if (const auto *B = dyn_cast<BinaryExpr>(E))
        ++Counts[std::string("b:") + binOpSpelling(B->getOp())];
      else if (const auto *U = dyn_cast<UnaryExpr>(E))
        ++Counts[std::string("u:") + unOpSpelling(U->getOp())];
      else if (const auto *C = dyn_cast<BuiltinCallExpr>(E))
        ++Counts[std::string("c:") + builtinName(C->getBuiltin())];
    });
    forEachStmt(F->getBody(), [&](const Stmt *S) {
      ++Counts["s:" +
               std::to_string(static_cast<int>(S->getKind()))];
    });
  }
  return Counts;
}

/// Parses and checks \p Witness into \p Ctx; false on any diagnostic
/// (reduced witnesses always parse — this guards hand-fed input).
bool parseWitness(const TestCase &Witness, ASTContext &Ctx) {
  DiagEngine Diags;
  return parseProgram(Witness.Source, Ctx, Diags) &&
         checkProgram(Ctx, Diags);
}

/// One probe dispatcher over the reducer's exact backend idiom:
/// column-grouped, prioritized when the scheduler shares its backend.
class ProbeRunner {
public:
  ProbeRunner(const TriageOptions &Opts) : Opts(Opts) {
    Backend = Opts.Backend;
    if (!Backend) {
      Owned = makeBackend(Opts.Exec);
      Backend = Owned.get();
    }
  }

  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) {
    std::vector<ExecColumn> Cols = groupIntoColumns(Jobs);
    if (Opts.DispatchPriority != 0)
      return Backend->runColumnsPrioritized(
          Cols,
          std::vector<unsigned>(Cols.size(), Opts.DispatchPriority));
    return Backend->runColumns(Cols);
  }

private:
  const TriageOptions &Opts;
  ExecBackend *Backend = nullptr;
  std::unique_ptr<ExecBackend> Owned;
};

} // namespace

TriageResult clfuzz::triageWitness(const TestCase &Witness,
                                   const DeviceConfig &Config, bool Opt,
                                   const TriageOptions &Opts) {
  TriageResult R;

  // Pipeline names come from the same derivation the driver compiles
  // with, so bit I of PassMask is pipeline position I on any backend.
  ASTContext Ctx;
  if (!parseWitness(Witness, Ctx)) {
    R.Error = "witness does not parse";
    addTriageWitness(0);
    return R;
  }
  PassOptions PO = passPipelineOptionsFor(Config, Opt, Witness);
  R.PipelinePasses = buildPipeline(PO, Ctx).passNames();
  const unsigned N = static_cast<unsigned>(R.PipelinePasses.size());

  ProbeRunner Runner(Opts);
  // Probe 1+2, one batch: the reference and the full pipeline. The
  // full-mask settings are the hunt's own (PassMask default), so this
  // probe's descriptor equals the campaign's original cell — a cache
  // hit on a warmed cache.
  std::vector<ExecJob> Initial;
  Initial.push_back(ExecJob::onReference(Witness, /*Opt=*/false, Opts.Run));
  Initial.push_back(ExecJob::onConfig(Witness, Config, Opt, Opts.Run));
  std::vector<RunOutcome> Outs = Runner.run(Initial);
  const RunOutcome Ref = Outs[0];
  const RunOutcome Full = Outs[1];

  // Memoized subset probes, keyed by logical mask. Probe counting is
  // over distinct masks (full mask and reference included), so the
  // reported count never depends on backend or cache state.
  std::map<uint64_t, RunOutcome> Memo;
  const uint64_t FullMask = N >= 64 ? ~uint64_t(0)
                                    : ((uint64_t(1) << N) - 1);
  Memo[FullMask] = Full;
  auto Probe = [&](uint64_t Mask) -> const RunOutcome & {
    auto It = Memo.find(Mask);
    if (It != Memo.end())
      return It->second;
    RunSettings S = Opts.Run;
    S.PassMask = Mask;
    std::vector<ExecJob> Jobs{ExecJob::onConfig(Witness, Config, Opt, S)};
    RunOutcome O = Runner.run(Jobs)[0];
    return Memo.emplace(Mask, O).first->second;
  };
  auto ChargeAndReturn = [&]() -> TriageResult & {
    R.Probes = static_cast<unsigned>(Memo.size()) + 1; // + the reference
    addTriageWitness(R.Probes);
    return R;
  };

  if (!differs(Full, Ref)) {
    R.Error = "witness does not reproduce on its configuration";
    return ChargeAndReturn();
  }
  R.Reproduced = true;

  // Attribution: if the divergence survives with every pass disabled,
  // the bug lives in the front end, codegen or runtime model, and the
  // cluster key is feature-only.
  if (N == 0 || differs(Probe(0), Ref)) {
    R.BugInPasses = false;
    Fnv64 H;
    for (const auto &KV : featureCounts(Ctx))
      H.addString(KV.first);
    R.Signature = H.value();
    R.ClusterKey = "nonpass/" + toHex(R.Signature);
    return ChargeAndReturn();
  }
  R.BugInPasses = true;

  // Greedy leave-one-out to a fixpoint: drop any pass whose removal
  // keeps the divergence, until no single removal does. The result is
  // 1-minimal — removing any member restores the reference output —
  // and deterministic (ascending position order, memoized probes).
  uint64_t Cur = FullMask;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Bit = uint64_t(1) << I;
      if (!(Cur & Bit))
        continue;
      uint64_t Trial = Cur & ~Bit;
      if (differs(Probe(Trial), Ref)) {
        Cur = Trial;
        Changed = true;
      }
    }
  }
  for (unsigned I = 0; I != N; ++I)
    if (Cur & (uint64_t(1) << I))
      R.FaultyPasses.push_back(R.PipelinePasses[I]);

  // Pass-effect signature: the witness's AST feature multiset before
  // vs after running ONLY the minimal faulty set, reduced to
  // delta-signs so the same defect leaves the same footprint whatever
  // the witness's surroundings (e.g. break-on-shift is always
  // {safe_lshift down, safe_rshift up}).
  std::map<std::string, int64_t> Before = featureCounts(Ctx);
  ASTContext AfterCtx;
  std::map<std::string, int64_t> After;
  if (parseWitness(Witness, AfterCtx)) {
    PassManager PM = buildPipeline(PO, AfterCtx);
    PM.run(AfterCtx, Cur);
    After = featureCounts(AfterCtx);
  }
  std::map<std::string, int64_t> Delta = After;
  for (const auto &KV : Before)
    Delta[KV.first] -= KV.second;
  Fnv64 H;
  for (const auto &KV : Delta) {
    if (KV.second == 0)
      continue;
    H.addString(KV.first);
    H.addByte(KV.second > 0 ? 1 : 2);
  }
  R.Signature = H.value();
  R.ClusterKey = join(R.FaultyPasses, "+") + "/" + toHex(R.Signature);
  return ChargeAndReturn();
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

std::string clfuzz::renderTriageLine(const TriageResult &R) {
  if (!R.Error.empty())
    return "triage: " + R.Error + " (" + std::to_string(R.Probes) +
           " probes)";
  if (!R.BugInPasses)
    return "triage: fault outside the pass pipeline; cluster " +
           R.ClusterKey + " (" + std::to_string(R.Probes) + " probes)";
  return "triage: minimal faulty passes {" + join(R.FaultyPasses, ", ") +
         "} of " + std::to_string(R.PipelinePasses.size()) +
         "-pass pipeline; cluster " + R.ClusterKey + " (" +
         std::to_string(R.Probes) + " probes)";
}

namespace {

const char *triageStatus(const TriageResult &R) {
  if (!R.Error.empty())
    return "error";
  return R.BugInPasses ? "pass-bug" : "non-pass";
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += ' ';
      continue;
    }
    Out += C;
  }
  Out += '"';
}

} // namespace

std::string clfuzz::triageCsvHeader() {
  return "label,status,faulty_passes,pipeline_size,probes,signature,"
         "cluster\n";
}

std::string clfuzz::renderTriageCsvRow(const std::string &Label,
                                       const TriageResult &R) {
  std::string Row = Label;
  Row += ',';
  Row += triageStatus(R);
  Row += ',';
  Row += join(R.FaultyPasses, "+");
  Row += ',';
  Row += std::to_string(R.PipelinePasses.size());
  Row += ',';
  Row += std::to_string(R.Probes);
  Row += ',';
  Row += R.Error.empty() ? toHex(R.Signature) : std::string();
  Row += ',';
  Row += R.ClusterKey;
  Row += '\n';
  return Row;
}

std::string clfuzz::renderTriageJsonl(const std::string &Label,
                                      const TriageResult &R) {
  std::string L = "{\"label\":";
  appendJsonString(L, Label);
  L += ",\"status\":\"";
  L += triageStatus(R);
  L += "\"";
  if (!R.Error.empty()) {
    L += ",\"error\":";
    appendJsonString(L, R.Error);
  }
  L += ",\"faulty_passes\":[";
  for (size_t I = 0; I != R.FaultyPasses.size(); ++I) {
    if (I)
      L += ',';
    appendJsonString(L, R.FaultyPasses[I]);
  }
  L += "],\"pipeline_size\":" + std::to_string(R.PipelinePasses.size());
  L += ",\"probes\":" + std::to_string(R.Probes);
  if (R.Error.empty()) {
    L += ",\"signature\":";
    appendJsonString(L, toHex(R.Signature));
    L += ",\"cluster\":";
    appendJsonString(L, R.ClusterKey);
  }
  L += "}\n";
  return L;
}

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

TriageCounters clfuzz::triageCounters() {
  TriageCounters C;
  C.Witnesses = GTriageWitnesses.load(std::memory_order_relaxed);
  C.Probes = GTriageProbes.load(std::memory_order_relaxed);
  C.Clusters = GTriageClusters.load(std::memory_order_relaxed);
  return C;
}

void clfuzz::addTriageWitness(uint64_t Probes) {
  GTriageWitnesses.fetch_add(1, std::memory_order_relaxed);
  GTriageProbes.fetch_add(Probes, std::memory_order_relaxed);
}

void clfuzz::addTriageClusters(uint64_t N) {
  GTriageClusters.fetch_add(N, std::memory_order_relaxed);
}
