//===- Triage.h - Pass bisection and bug clustering -------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-reduction triage stage: for a reduced wrong-code witness,
/// bisect over the optimisation pass pipeline to name the minimal
/// faulty pass combination, then derive a cluster key so campaigns can
/// report *distinct bugs* alongside raw witness counts ("A Systematic
/// Impact Study for Fuzzer-Found Compiler Bugs" argues distinct-bug
/// counts are the metric that matters at fleet scale).
///
/// Bisection probes are ordinary ExecJobs whose RunSettings::PassMask
/// selects a pipeline subset, so they serialize on the wire, hit the
/// outcome cache by descriptor and run on any backend unchanged. The
/// search is deterministic (greedy leave-one-out to a 1-minimal
/// fixpoint, probes memoized by mask), so a triage report is
/// byte-identical across inline|threads|procs|remote × worker count ×
/// cache state — tests/TriageConformanceTest.cpp pins that with
/// fault-injected passes of known minimal faulty sets.
///
/// docs/triage.md is the full design document (algorithm, cluster key
/// derivation, report schema, flag table).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_TRIAGE_TRIAGE_H
#define CLFUZZ_TRIAGE_TRIAGE_H

#include "exec/ExecutionEngine.h"

#include <cstdio>
#include <string>
#include <vector>

namespace clfuzz {

class ExecBackend;

/// How triage dispatches its bisection probes — mirrors the reducer's
/// scheduling knobs so `hunt --reduce --triage` reuses one wiring.
struct TriageOptions {
  /// Backend construction options when \p Backend is null (the solo
  /// path; the scheduler instead shares its backend).
  ExecOptions Exec;
  /// Shared backend override (non-owning). When set, probes dispatch
  /// through runColumnsPrioritized at \p DispatchPriority so triage
  /// rides the priority lane and never starves foreground campaigns.
  ExecBackend *Backend = nullptr;
  /// 0 = plain runColumns; nonzero = prioritized dispatch.
  unsigned DispatchPriority = 0;
  /// Settings shared by every probe (PassMask is overridden per
  /// probe). Must equal the hunt's run settings so the full-pipeline
  /// probe is a cache hit of the campaign's original cell.
  RunSettings Run;
};

/// The verdict for one witness.
struct TriageResult {
  /// False when the full-pipeline run no longer differs from the
  /// reference (the witness does not reproduce); Error then says so
  /// and every other field is empty.
  bool Reproduced = false;
  /// True when the divergence is attributable to the pass pipeline
  /// (the empty-mask probe matches the reference). False = the bug is
  /// in the front end, codegen or runtime model; FaultyPasses is then
  /// empty and the cluster key is feature-only.
  bool BugInPasses = false;
  /// Names of the full pipeline, in position order.
  std::vector<std::string> PipelinePasses;
  /// The 1-minimal faulty pass combination (names, in position
  /// order): removing any one restores the reference output.
  std::vector<std::string> FaultyPasses;
  /// Kernel-feature signature: for pass bugs, an FNV over the sorted
  /// (feature, delta-sign) pairs of the AST feature multiset before
  /// vs after running only the faulty passes — the same defect leaves
  /// the same footprint on any witness. For non-pass bugs, an FNV
  /// over the witness's feature-presence set.
  uint64_t Signature = 0;
  /// `pass+pass/0xsignature` (or `nonpass/0xsignature`): the dedup
  /// key — one cluster per distinct bug.
  std::string ClusterKey;
  /// Distinct pass masks probed (memoized, so the count is identical
  /// whatever the backend or cache state).
  unsigned Probes = 0;
  /// Non-empty when triage could not run (unparseable witness,
  /// non-reproducing witness).
  std::string Error;
};

/// Bisects and clusters one reduced witness that misbehaves on
/// \p Config at \p Opt. Deterministic: equal inputs give equal
/// results on every backend and cache state.
TriageResult triageWitness(const TestCase &Witness,
                           const DeviceConfig &Config, bool Opt,
                           const TriageOptions &Opts);

/// One human-readable line for a result (no label, no newline).
std::string renderTriageLine(const TriageResult &R);

/// CSV sink: header + one row per witness.
std::string triageCsvHeader();
std::string renderTriageCsvRow(const std::string &Label,
                               const TriageResult &R);

/// JSONL sink: one object per witness.
std::string renderTriageJsonl(const std::string &Label,
                              const TriageResult &R);

/// Process-wide triage counters (relaxed atomics, the VmCounters
/// pattern): `--stats` prints them and the campaign scheduler
/// attributes around-step deltas per campaign.
struct TriageCounters {
  uint64_t Witnesses = 0; ///< witnesses triaged (errors included)
  uint64_t Probes = 0;    ///< distinct bisection probes dispatched
  uint64_t Clusters = 0;  ///< first-seen cluster keys (per campaign)
};

TriageCounters triageCounters();
/// Charged by triageWitness on completion.
void addTriageWitness(uint64_t Probes);
/// Charged by the consuming task when a cluster key is first seen, so
/// per-campaign attribution under the scheduler is exact.
void addTriageClusters(uint64_t N);

} // namespace clfuzz

#endif // CLFUZZ_TRIAGE_TRIAGE_H
