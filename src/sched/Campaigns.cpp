//===- Campaigns.cpp - Schedulable campaign task builders --------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
// The report-formatting code here IS the solo commands' output path
// (`clfuzz hunt/diff/reduce` construct these tasks), so every printf
// format below is load-bearing for byte-identity between solo and
// scheduled runs — and for the CI jobs that diff the two.
//
//===----------------------------------------------------------------------===//

#include "sched/Campaigns.h"

#include "device/DeviceConfig.h"
#include "exec/JobSerialize.h"
#include "exec/Pipeline.h"
#include "oracle/Campaign.h"
#include "oracle/Oracle.h"
#include "support/Rng.h"
#include "support/StringUtil.h"
#include "triage/Triage.h"

#include <algorithm>
#include <set>

using namespace clfuzz;

namespace {

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

/// One kernel across the whole zoo: a single backend batch, then the
/// report — one step.
class DiffTask final : public CampaignTask {
public:
  DiffTask(DiffSpec Spec, ExecBackend &Backend, std::FILE *Out)
      : Spec(std::move(Spec)), Backend(Backend), Out(Out) {}

  bool done() const override { return Finished; }

  void step() override {
    TestCase T = TestCase::fromGenerated(generateKernel(Spec.Gen));
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    std::vector<ExecJob> Jobs;
    std::vector<std::string> Labels;
    for (const DeviceConfig &C : Zoo) {
      for (bool Opt : {false, true}) {
        Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
        Labels.push_back(std::to_string(C.Id) + (Opt ? "+" : "-"));
      }
    }
    // The whole zoo runs one kernel: a single column, parsed once per
    // worker instead of once per cell.
    std::vector<RunOutcome> Outs =
        Backend.runColumns(groupIntoColumns(Jobs));
    JobsRun = Jobs.size();

    if (Spec.Format == "csv" || Spec.Format == "jsonl") {
      std::unique_ptr<ResultSink> Sink;
      if (Spec.Format == "csv")
        Sink = std::make_unique<CsvOutcomeSink>(Out, Labels);
      else
        Sink = std::make_unique<JsonlOutcomeSink>(Out, Labels);
      Sink->consumeTest(0, T, Outs);
      Sink->finish();
      Finished = true;
      return;
    }
    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    unsigned Wrong = 0;
    for (size_t I = 0; I != Vs.size(); ++I) {
      std::fprintf(Out, "%-5s %-4s", Labels[I].c_str(),
                   verdictName(Vs[I]));
      if (Outs[I].ok())
        std::fprintf(Out, " %s", toHex(Outs[I].OutputHash).c_str());
      else
        std::fprintf(Out, " %s", Outs[I].Message.c_str());
      std::fprintf(Out, "\n");
      if (Vs[I] == Verdict::Wrong) {
        ++Wrong;
        Fingerprints.insert(hashDescriptor(Jobs[I]));
      }
    }
    std::fprintf(Out, "\n%u wrong-code verdicts\n", Wrong);
    Finished = true;
  }

  size_t distinctWitnesses() const override { return Fingerprints.size(); }
  size_t testsDone() const override { return Finished ? 1 : 0; }
  size_t jobsDone() const override { return JobsRun; }

private:
  DiffSpec Spec;
  ExecBackend &Backend;
  std::FILE *Out;
  std::set<uint64_t> Fingerprints;
  size_t JobsRun = 0;
  bool Finished = false;
};

//===----------------------------------------------------------------------===//
// hunt
//===----------------------------------------------------------------------===//

/// Streams hunt findings: votes per kernel as its cells arrive and
/// prints wrong-code witnesses immediately, in seed order; with a
/// reduction queue attached, every witness is also submitted for
/// background shrinking while the hunt keeps going. Memory is one
/// kernel's outcomes, regardless of the count.
class HuntSink final : public ResultSink {
public:
  HuntSink(uint64_t SeedBase, std::vector<std::string> Labels,
           const std::vector<DeviceConfig> &Targets,
           ReductionQueue *Reductions, bool Triage, std::FILE *Out)
      : SeedBase(SeedBase), Labels(std::move(Labels)), Targets(Targets),
        Reductions(Reductions), Triage(Triage), Out(Out) {}

  void consumeTest(size_t TestIndex, const TestCase &T,
                   const std::vector<RunOutcome> &Outs) override {
    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    for (size_t I = 0; I != Vs.size(); ++I) {
      if (Vs[I] != Verdict::Wrong)
        continue;
      ++Findings;
      // The witness cell's job descriptor is the distinctness
      // fingerprint: the same (kernel, config, opt) witness found
      // twice counts once for the yield-weighted policy.
      Fingerprints.insert(hashDescriptor(ExecJob::onConfig(
          T, Targets[I / 2], /*Opt=*/I % 2 != 0, RunSettings())));
      std::fprintf(Out, "seed %llu: wrong code on config %s\n",
                   static_cast<unsigned long long>(SeedBase + TestIndex),
                   Labels[I].c_str());
      if (Reductions) {
        ReductionJob Job;
        Job.OrderKey = TestIndex * Labels.size() + I;
        Job.Label = "seed " +
                    std::to_string(SeedBase + TestIndex) + " config " +
                    Labels[I];
        Job.Witness = T;
        Job.Oracle = std::make_shared<DifferentialReductionOracle>(
            Targets[I / 2], /*Opt=*/I % 2 != 0);
        if (Triage)
          Job.Triage = TriageRequest{Targets[I / 2], /*Opt=*/I % 2 != 0};
        Reductions->submit(std::move(Job));
      }
    }
  }

  uint64_t SeedBase;
  std::vector<std::string> Labels;
  const std::vector<DeviceConfig> &Targets;
  ReductionQueue *Reductions;
  bool Triage;
  std::FILE *Out;
  unsigned Findings = 0;
  std::set<uint64_t> Fingerprints;
};

class HuntTask final : public CampaignTask {
public:
  HuntTask(HuntSpec Spec, unsigned ShardSize, ExecBackend &Backend,
           ReductionQueue *Queue, std::FILE *Out)
      : Spec(std::move(Spec)), Backend(Backend), Queue(Queue), Out(Out) {
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    for (int Id : paperAboveThresholdIds())
      Targets.push_back(configById(Zoo, Id));
    for (const DeviceConfig &C : Targets)
      for (bool Opt : {false, true})
        Labels.push_back(std::to_string(C.Id) + (Opt ? "+" : "-"));

    Source = std::make_unique<GeneratorSource>(
        this->Spec.Mode, GenOptions(), this->Spec.Seed, this->Spec.Count,
        /*Prefilter=*/false, /*Config1=*/nullptr, RunSettings(), Backend);

    if (this->Spec.Format == "csv")
      Sink = std::make_unique<CsvOutcomeSink>(Out, Labels);
    else if (this->Spec.Format == "jsonl")
      Sink = std::make_unique<JsonlOutcomeSink>(Out, Labels);
    else {
      auto HS = std::make_unique<HuntSink>(this->Spec.Seed, Labels,
                                           Targets, Queue,
                                           this->Spec.Triage, Out);
      Findings = HS.get();
      Sink = std::move(HS);
    }

    Run = std::make_unique<ShardedCampaignRun>(
        *Source, Backend, ShardSize,
        [this](size_t, const TestCase &T, std::vector<ExecJob> &Jobs) {
          for (const DeviceConfig &C : Targets)
            for (bool Opt : {false, true})
              Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
        },
        *Sink);
  }

  bool done() const override { return Phase == PhaseKind::Done; }

  /// True while the campaign proper is still running (the reduction
  /// lane closes when this goes false: no further submissions).
  bool mainPhaseActive() const { return Phase == PhaseKind::Main; }

  bool ready() const override {
    // Waiting for background/lane reductions to finish is the only
    // not-ready state; under the scheduler the reduction lane is
    // ready exactly while jobs are queued, so one of the two always
    // progresses.
    if (Phase == PhaseKind::WaitReductions)
      return Queue->allDone();
    return Phase != PhaseKind::Done;
  }

  void waitReady() override {
    // Solo driver over a *threaded* queue: block until the
    // background workers finish instead of spinning.
    if (Phase == PhaseKind::WaitReductions)
      Queue->waitAll();
  }

  void step() override {
    switch (Phase) {
    case PhaseKind::Main:
      if (!Run->step()) {
        if (Findings)
          std::fprintf(
              Out,
              "%u findings over %zu kernels on the %s backend; rerun "
              "`clfuzz gen --mode=%s --seed=<seed>` to inspect a "
              "witness\n",
              Findings->Findings, Run->stats().Tests, Backend.name(),
              Spec.ModeName.c_str());
        Phase = (Queue && Findings) ? PhaseKind::WaitReductions
                                    : PhaseKind::Done;
      }
      return;
    case PhaseKind::WaitReductions:
      printReductions();
      Phase = PhaseKind::Done;
      return;
    case PhaseKind::Done:
      return;
    }
  }

  size_t distinctWitnesses() const override {
    return Findings ? Findings->Fingerprints.size() : 0;
  }
  size_t testsDone() const override { return Run->stats().Tests; }
  size_t jobsDone() const override { return Run->stats().Jobs; }
  int exitCode() const override { return ExitCodeV; }

private:
  enum class PhaseKind { Main, WaitReductions, Done };

  void printReductions() {
    std::vector<ReductionResult> Reduced = Queue->drain();
    if (!Reduced.empty())
      std::fprintf(Out, "\n%zu witnesses reduced in the background:\n",
                   Reduced.size());
    for (const ReductionResult &R : Reduced) {
      if (!R.Error.empty()) {
        std::fprintf(Out,
                     "\n%s: reduction failed (%s); witness kept as-is\n",
                     R.Label.c_str(), R.Error.c_str());
        continue;
      }
      std::fprintf(Out,
                   "\n%s: %u -> %u lines (%u candidates tried, %u kept)\n",
                   R.Label.c_str(), R.Stats.InitialLines,
                   R.Stats.FinalLines, R.Stats.CandidatesTried,
                   R.Stats.CandidatesKept);
      std::fprintf(Out, "%s", R.Reduced.Source.c_str());
      if (R.Triage)
        std::fprintf(Out, "%s: %s\n", R.Label.c_str(),
                     renderTriageLine(*R.Triage).c_str());
    }
    if (Spec.Triage)
      printTriageSummary(Reduced);
    if (!Spec.ReduceTracePath.empty()) {
      std::FILE *F = Spec.ReduceTracePath == "-"
                         ? stderr
                         : std::fopen(Spec.ReduceTracePath.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     Spec.ReduceTracePath.c_str());
        ExitCodeV = 1;
        return;
      }
      // Traces were buffered per witness; emitting them in drain
      // order keeps the file byte-identical however the background
      // jobs interleaved.
      for (const ReductionResult &R : Reduced)
        std::fwrite(R.Trace.data(), 1, R.Trace.size(), F);
      if (F != stderr)
        std::fclose(F);
    }
  }

  /// The distinct-bug epilogue for `hunt --reduce --triage`: one
  /// summary line on the report stream, plus the optional csv/jsonl
  /// sink file. Drain order is deterministic, so both are
  /// byte-identical however the background jobs interleaved.
  void printTriageSummary(const std::vector<ReductionResult> &Reduced) {
    std::set<std::string> Keys;
    size_t Triaged = 0;
    for (const ReductionResult &R : Reduced)
      if (R.Triage) {
        ++Triaged;
        if (!R.Triage->ClusterKey.empty())
          Keys.insert(R.Triage->ClusterKey);
      }
    // Charged here (not in triageWitness) so the increment lands
    // inside this campaign's own step under the scheduler: the
    // per-campaign stats delta attributes it exactly.
    addTriageClusters(Keys.size());
    if (Triaged)
      std::fprintf(Out,
                   "\ntriage: %zu distinct bug cluster(s) across %zu "
                   "triaged witness(es)\n",
                   Keys.size(), Triaged);
    if (Spec.TriageOut.empty())
      return;
    std::FILE *F = Spec.TriageOut == "-"
                       ? stderr
                       : std::fopen(Spec.TriageOut.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open triage report file '%s'\n",
                   Spec.TriageOut.c_str());
      ExitCodeV = 1;
      return;
    }
    std::string Report;
    if (Spec.TriageFormat == "csv")
      Report += triageCsvHeader();
    for (const ReductionResult &R : Reduced) {
      if (!R.Triage)
        continue;
      Report += Spec.TriageFormat == "csv"
                    ? renderTriageCsvRow(R.Label, *R.Triage)
                    : renderTriageJsonl(R.Label, *R.Triage);
    }
    std::fwrite(Report.data(), 1, Report.size(), F);
    if (F != stderr)
      std::fclose(F);
  }

  HuntSpec Spec;
  ExecBackend &Backend;
  ReductionQueue *Queue;
  std::FILE *Out;
  std::vector<DeviceConfig> Targets;
  std::vector<std::string> Labels;
  std::unique_ptr<GeneratorSource> Source;
  std::unique_ptr<ResultSink> Sink;
  HuntSink *Findings = nullptr; ///< null for csv/jsonl
  std::unique_ptr<ShardedCampaignRun> Run;
  PhaseKind Phase = PhaseKind::Main;
  int ExitCodeV = 0;
};

//===----------------------------------------------------------------------===//
// EMI
//===----------------------------------------------------------------------===//

/// The §7.4 campaign as a schedulable task: base collection runs one
/// candidate wave per step, then each base's variant sweep streams
/// shard by shard, and the epilogue prints one row per (config, opt)
/// cell. The collection/sweep logic mirrors
/// oracle/Campaign.cpp:runEmiCampaign over the above-threshold
/// configurations.
class EmiTask final : public CampaignTask {
public:
  EmiTask(EmiSpec Spec, unsigned ShardSize, ExecBackend &Backend,
          std::FILE *Out)
      : Spec(Spec), ShardSize(ShardSize), Backend(Backend), Out(Out),
        BlockCount(Spec.SeedBase ^ 0xb10cULL) {
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    for (int Id : paperAboveThresholdIds())
      Targets.push_back(configById(Zoo, Id));
    for (const DeviceConfig &C : Targets)
      for (bool Opt : {false, true})
        Keys.push_back(ConfigKey{C.Id, Opt});
    Columns.resize(Keys.size());
    NextSeed = Spec.SeedBase + 777;
    MaxAttempts = Spec.Bases * 8;
  }

  bool done() const override { return Phase == PhaseKind::Done; }

  void step() override {
    switch (Phase) {
    case PhaseKind::Collect:
      collectWave();
      return;
    case PhaseKind::Sweep:
      sweepStep();
      return;
    case PhaseKind::Done:
      return;
    }
  }

  size_t distinctWitnesses() const override { return Fingerprints.size(); }
  size_t testsDone() const override {
    return SweptTests + (Run ? Run->stats().Tests : 0);
  }
  size_t jobsDone() const override {
    return ProbeJobs + SweptJobs + (Run ? Run->stats().Jobs : 0);
  }

private:
  enum class PhaseKind { Collect, Sweep, Done };

  /// One wave of base candidates: generate through the backend's
  /// in-process parallelism, probe (normal, dead-array-inverted) on
  /// the reference, accept in seed order. Identical scan to
  /// runEmiCampaign, so the accepted base set is invariant across
  /// backends and worker counts.
  void collectWave() {
    if (Bases.size() >= Spec.Bases || ScanPos >= MaxAttempts) {
      finishCollect();
      return;
    }
    unsigned Needed = Spec.Bases - static_cast<unsigned>(Bases.size());
    unsigned Wave = std::min(MaxAttempts - ScanPos,
                             std::max(Needed, Backend.concurrency()));

    std::vector<GenOptions> Candidates(Wave);
    std::vector<TestCase> Tests(Wave);
    Backend.forEachIndex(Wave, [&](size_t I) {
      GenOptions GO;
      GO.Mode = GenMode::All;
      GO.Seed = NextSeed + I;
      Rng JobRng = BlockCount.forkForJob(ScanPos + I);
      GO.NumEmiBlocks = static_cast<unsigned>(
          JobRng.range(Spec.MinBlocks, Spec.MaxBlocks));
      Candidates[I] = GO;
      Tests[I] = TestCase::fromGenerated(generateKernel(GO));
    });

    RunSettings Inverted;
    Inverted.InvertDead = true;
    std::vector<ExecJob> Jobs;
    Jobs.reserve(2 * Wave);
    for (const TestCase &T : Tests) {
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/true, RunSettings()));
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/true, Inverted));
    }
    std::vector<RunOutcome> Outs = Backend.run(Jobs);
    ProbeJobs += Jobs.size();

    for (unsigned I = 0; I != Wave && Bases.size() < Spec.Bases; ++I) {
      ++ScanPos;
      // The base must compute a value on the reference, and inverting
      // the dead array must change the result (§7.4 discards
      // candidates whose EMI blocks sit in already-dead code).
      const RunOutcome &Normal = Outs[2 * I];
      const RunOutcome &Live = Outs[2 * I + 1];
      if (!Normal.ok())
        continue;
      if (Live.ok() && Live.OutputHash == Normal.OutputHash)
        continue;
      Bases.push_back(Candidates[I]);
    }
    NextSeed += Wave;
    if (Bases.size() >= Spec.Bases || ScanPos >= MaxAttempts)
      finishCollect();
  }

  void finishCollect() {
    std::fprintf(Out,
                 "emi: %zu usable bases (seed %llu, %u-%u dead blocks, "
                 "%zu cells)\n",
                 Bases.size(),
                 static_cast<unsigned long long>(Spec.SeedBase),
                 Spec.MinBlocks, Spec.MaxBlocks, Keys.size());
    Phase = Bases.empty() ? PhaseKind::Done : PhaseKind::Sweep;
    if (Phase == PhaseKind::Done)
      printTable();
  }

  void sweepStep() {
    if (!Run)
      beginBase();
    if (Run->step())
      return;
    // This base's variants drained: vote each cell, then move on.
    for (size_t Cell = 0; Cell != Keys.size(); ++Cell) {
      EmiBaseVerdict V = classifyEmiVariants(CellSink->PerCell[Cell]);
      EmiColumn &Col = Columns[Cell];
      Col.BaseFails += V.BadBase;
      Col.Wrong += V.Wrong;
      Col.InducedBF += V.InducedBF && !V.BadBase;
      Col.InducedCrash += V.InducedCrash && !V.BadBase;
      Col.InducedTimeout += V.InducedTimeout && !V.BadBase;
      Col.Stable += V.Stable;
      // A wrong cell is a distinct witness per (base, cell): the
      // base's first variant descriptor anchors the fingerprint.
      if (V.Wrong)
        Fingerprints.insert(BaseFingerprint ^
                            (0x9e3779b97f4a7c15ULL * (Cell + 1)));
    }
    SweptTests += Run->stats().Tests;
    SweptJobs += Run->stats().Jobs;
    Run.reset();
    CellSink.reset();
    Source.reset();
    if (++BaseIdx == Bases.size()) {
      printTable();
      Phase = PhaseKind::Done;
    }
  }

  void beginBase() {
    Source = std::make_unique<EmiVariantSource>(Bases[BaseIdx], Backend);
    CellSink = std::make_unique<CellCollector>(Keys.size());
    BaseFingerprint = 0;
    Run = std::make_unique<ShardedCampaignRun>(
        *Source, Backend, ShardSize,
        [this](size_t, const TestCase &T, std::vector<ExecJob> &Jobs) {
          size_t First = Jobs.size();
          for (const DeviceConfig &C : Targets)
            for (bool Opt : {false, true})
              Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
          if (BaseFingerprint == 0 && Jobs.size() > First)
            BaseFingerprint = hashDescriptor(Jobs[First]);
        },
        *CellSink);
  }

  void printTable() {
    std::fprintf(Out,
                 "cell  base-fail wrong induced-bf induced-crash "
                 "induced-timeout stable\n");
    for (size_t I = 0; I != Keys.size(); ++I) {
      std::string Label =
          std::to_string(Keys[I].ConfigId) + (Keys[I].Opt ? "+" : "-");
      const EmiColumn &C = Columns[I];
      std::fprintf(Out, "%-5s %9u %5u %10u %13u %15u %6u\n",
                   Label.c_str(), C.BaseFails, C.Wrong, C.InducedBF,
                   C.InducedCrash, C.InducedTimeout, C.Stable);
    }
  }

  /// Per-cell outcome regroup for one base (mirrors Campaign.cpp's
  /// EmiCellSink): bounded by outcomes-per-cell, variants stream.
  class CellCollector final : public ResultSink {
  public:
    explicit CellCollector(size_t NumCells) : PerCell(NumCells) {}
    void consumeTest(size_t, const TestCase &,
                     const std::vector<RunOutcome> &Outcomes) override {
      for (size_t Cell = 0; Cell != PerCell.size(); ++Cell)
        PerCell[Cell].push_back(Outcomes[Cell]);
    }
    std::vector<std::vector<RunOutcome>> PerCell;
  };

  struct EmiColumn {
    unsigned BaseFails = 0, Wrong = 0, InducedBF = 0, InducedCrash = 0,
             InducedTimeout = 0, Stable = 0;
  };

  EmiSpec Spec;
  unsigned ShardSize;
  ExecBackend &Backend;
  std::FILE *Out;
  Rng BlockCount;
  std::vector<DeviceConfig> Targets;
  std::vector<ConfigKey> Keys;
  std::vector<EmiColumn> Columns;
  std::vector<GenOptions> Bases;
  uint64_t NextSeed = 0;
  unsigned ScanPos = 0;
  unsigned MaxAttempts = 0;
  size_t BaseIdx = 0;
  uint64_t BaseFingerprint = 0;
  std::unique_ptr<EmiVariantSource> Source;
  std::unique_ptr<CellCollector> CellSink;
  std::unique_ptr<ShardedCampaignRun> Run;
  std::set<uint64_t> Fingerprints;
  size_t SweptTests = 0, SweptJobs = 0, ProbeJobs = 0;
  PhaseKind Phase = PhaseKind::Collect;
};

//===----------------------------------------------------------------------===//
// reduce
//===----------------------------------------------------------------------===//

/// One witness reduction as a campaign. The whole reduceTest runs in
/// a single step: reduction rounds are internally sharded over the
/// backend, but the fixpoint loop is not re-entrant, so the scheduler
/// treats a reduce campaign as one coarse grant (queued hunt
/// reductions behave the same way through the lane).
class ReduceTask final : public CampaignTask {
public:
  ReduceTask(ReduceSpec Spec, std::FILE *Out)
      : Spec(std::move(Spec)), Out(Out) {}

  bool done() const override { return Finished; }

  void step() override {
    Finished = true;
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    const DeviceConfig &Config = configById(Zoo, Spec.ConfigId);

    std::unique_ptr<ReductionOracle> Oracle;
    if (Spec.Expect == "wrong")
      Oracle = std::make_unique<DifferentialReductionOracle>(Config,
                                                             Spec.Opt);
    else if (Spec.Expect == "crash")
      Oracle = std::make_unique<StatusReductionOracle>(Config, Spec.Opt,
                                                       RunStatus::Crash);
    else if (Spec.Expect == "timeout")
      Oracle = std::make_unique<StatusReductionOracle>(
          Config, Spec.Opt, RunStatus::Timeout);
    else
      Oracle = std::make_unique<StatusReductionOracle>(
          Config, Spec.Opt, RunStatus::BuildFailure);

    ReducerOptions RO = Spec.Opts;
    std::FILE *TraceFile = nullptr;
    if (!Spec.TracePath.empty()) {
      TraceFile = Spec.TracePath == "-"
                      ? stderr
                      : std::fopen(Spec.TracePath.c_str(), "w");
      if (!TraceFile) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     Spec.TracePath.c_str());
        ExitCodeV = 2;
        return;
      }
      RO.Trace = makeJsonlReduceTrace(TraceFile);
    }

    TestCase T = TestCase::fromGenerated(generateKernel(Spec.Gen));
    ReduceStats Stats;
    TestCase Reduced = reduceTest(T, *Oracle, RO, &Stats);
    if (TraceFile && TraceFile != stderr)
      std::fclose(TraceFile);
    CandidatesTried = Stats.CandidatesTried;

    std::string Cell =
        std::to_string(Config.Id) + (Spec.Opt ? "+" : "-");
    if (!Stats.WitnessWasInteresting) {
      std::fprintf(stderr,
                   "witness is not interesting: seed %llu does not %s on "
                   "config %s\n",
                   static_cast<unsigned long long>(Spec.Gen.Seed),
                   Spec.Expect == "wrong" ? "miscompile"
                                          : Spec.Expect.c_str(),
                   Cell.c_str());
      ExitCodeV = 1;
      return;
    }
    Interesting = true;

    // The report is deliberately backend-silent: `reduce` output is
    // byte-identical across backends and worker counts.
    std::fprintf(Out, "// reduced witness: seed %llu, config %s, %s\n",
                 static_cast<unsigned long long>(Spec.Gen.Seed),
                 Cell.c_str(), Spec.Expect.c_str());
    std::fprintf(Out,
                 "// lines %u -> %u; %u candidates tried, %u kept, %u "
                 "skipped; %u rounds, %u escalations\n",
                 Stats.InitialLines, Stats.FinalLines,
                 Stats.CandidatesTried, Stats.CandidatesKept,
                 Stats.CandidatesSkipped, Stats.Rounds,
                 Stats.Escalations);
    std::fprintf(Out, "%s", Reduced.Source.c_str());
  }

  size_t distinctWitnesses() const override { return Interesting ? 1 : 0; }
  size_t testsDone() const override { return Finished ? 1 : 0; }
  size_t jobsDone() const override { return CandidatesTried; }
  int exitCode() const override { return ExitCodeV; }

private:
  ReduceSpec Spec;
  std::FILE *Out;
  bool Finished = false;
  bool Interesting = false;
  size_t CandidatesTried = 0;
  int ExitCodeV = 0;
};

//===----------------------------------------------------------------------===//
// triage
//===----------------------------------------------------------------------===//

/// One witness reduced then bisected, as a campaign. Like ReduceTask
/// the whole job is one coarse step (the reducer's fixpoint loop and
/// the bisection's greedy loop are both internally sharded but not
/// re-entrant). Triage is wrong-code-only: the bisection oracle is
/// output divergence against the reference.
class TriageTask final : public CampaignTask {
public:
  TriageTask(TriageSpec Spec, std::FILE *Out)
      : Spec(std::move(Spec)), Out(Out) {}

  bool done() const override { return Finished; }

  void step() override {
    Finished = true;
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    const DeviceConfig &Config = configById(Zoo, Spec.ConfigId);
    DifferentialReductionOracle Oracle(Config, Spec.Opt);

    TestCase T = TestCase::fromGenerated(generateKernel(Spec.Gen));
    ReduceStats Stats;
    TestCase Reduced = reduceTest(T, Oracle, Spec.Opts, &Stats);
    CandidatesTried = Stats.CandidatesTried;

    std::string Cell =
        std::to_string(Config.Id) + (Spec.Opt ? "+" : "-");
    if (!Stats.WitnessWasInteresting) {
      std::fprintf(stderr,
                   "witness is not interesting: seed %llu does not "
                   "miscompile on config %s\n",
                   static_cast<unsigned long long>(Spec.Gen.Seed),
                   Cell.c_str());
      ExitCodeV = 1;
      return;
    }
    Interesting = true;

    // Probes ride the reducer's scheduling verbatim: same backend
    // (shared under the scheduler), same priority, same settings.
    TriageOptions TO;
    TO.Exec = Spec.Opts.Exec;
    TO.Backend = Spec.Opts.Backend;
    TO.DispatchPriority = Spec.Opts.DispatchPriority;
    TO.Run = Spec.Opts.Run;
    TriageResult R = triageWitness(Reduced, Config, Spec.Opt, TO);
    Probes = R.Probes;
    // One witness: its cluster (if any) is first-seen by definition.
    addTriageClusters(R.ClusterKey.empty() ? 0 : 1);

    std::string Label = "seed " +
                        std::to_string(Spec.Gen.Seed) + " config " + Cell;
    if (Spec.Format == "csv") {
      std::string Report = triageCsvHeader() + renderTriageCsvRow(Label, R);
      std::fwrite(Report.data(), 1, Report.size(), Out);
      return;
    }
    if (Spec.Format == "jsonl") {
      std::string Report = renderTriageJsonl(Label, R);
      std::fwrite(Report.data(), 1, Report.size(), Out);
      return;
    }
    // Text report, backend-silent like `reduce`: the reduced witness
    // first (the thing a human files upstream), then the verdict.
    std::fprintf(Out, "// triaged witness: seed %llu, config %s\n",
                 static_cast<unsigned long long>(Spec.Gen.Seed),
                 Cell.c_str());
    std::fprintf(Out, "// lines %u -> %u; %u candidates tried\n",
                 Stats.InitialLines, Stats.FinalLines,
                 Stats.CandidatesTried);
    std::fprintf(Out, "%s", Reduced.Source.c_str());
    std::fprintf(Out, "%s: %s\n", Label.c_str(),
                 renderTriageLine(R).c_str());
  }

  size_t distinctWitnesses() const override { return Interesting ? 1 : 0; }
  size_t testsDone() const override { return Finished ? 1 : 0; }
  size_t jobsDone() const override { return CandidatesTried + Probes; }
  int exitCode() const override { return ExitCodeV; }

private:
  TriageSpec Spec;
  std::FILE *Out;
  bool Finished = false;
  bool Interesting = false;
  size_t CandidatesTried = 0;
  unsigned Probes = 0;
  int ExitCodeV = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

std::unique_ptr<CampaignTask> clfuzz::makeDiffTask(const DiffSpec &Spec,
                                                   ExecBackend &Backend,
                                                   std::FILE *Out) {
  return std::make_unique<DiffTask>(Spec, Backend, Out);
}

HuntCampaign clfuzz::makeHuntCampaign(const HuntSpec &Spec,
                                      unsigned ShardSize,
                                      ExecBackend &Backend,
                                      std::FILE *Out) {
  HuntCampaign C;
  // Reduction rides the text report only (csv/jsonl sinks have no
  // verdict stream to submit witnesses from), like the solo command.
  bool WantReduce = Spec.Reduce && Spec.Format == "text";
  if (WantReduce)
    C.Queue = std::make_unique<ReductionQueue>(
        Spec.ReduceOpts, Spec.ReduceWorkers,
        /*CaptureTrace=*/!Spec.ReduceTracePath.empty());

  auto Main = std::make_unique<HuntTask>(Spec, ShardSize, Backend,
                                         C.Queue.get(), Out);
  if (WantReduce && Spec.ReduceWorkers == 0) {
    // Scheduler-driven queue: the priority lane services it; closed
    // once the hunt's campaign phase stops submitting.
    HuntTask *MainPtr = Main.get();
    C.Lane = std::make_unique<ReductionLaneTask>(
        *C.Queue, [MainPtr] { return !MainPtr->mainPhaseActive(); });
  }
  C.Main = std::move(Main);
  return C;
}

std::unique_ptr<CampaignTask> clfuzz::makeEmiTask(const EmiSpec &Spec,
                                                  unsigned ShardSize,
                                                  ExecBackend &Backend,
                                                  std::FILE *Out) {
  return std::make_unique<EmiTask>(Spec, ShardSize, Backend, Out);
}

std::unique_ptr<CampaignTask> clfuzz::makeReduceTask(const ReduceSpec &Spec,
                                                     std::FILE *Out) {
  return std::make_unique<ReduceTask>(Spec, Out);
}

std::unique_ptr<CampaignTask> clfuzz::makeTriageTask(const TriageSpec &Spec,
                                                     std::FILE *Out) {
  return std::make_unique<TriageTask>(Spec, Out);
}
