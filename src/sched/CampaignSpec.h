//===- CampaignSpec.h - --campaigns= specification parsing ------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the `clfuzz sched --campaigns=` specification: a
/// semicolon-separated list of campaign declarations,
///
///   hunt(mode=BASIC,count=50,seed=1,reduce);diff(seed=9);emi(bases=2)
///
/// each `type(key=value,flag,...)` with types hunt, diff, emi and
/// reduce; a bare `type` takes every default. `--campaigns=@FILE`
/// reads the same grammar from a config file, one declaration per
/// line (or ';'-separated), with '#' comments and blank lines
/// ignored. Every declaration may carry `name=` — otherwise campaign
/// I is named "c<I>-<type>". docs/scheduler.md tabulates the per-type
/// keys.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SCHED_CAMPAIGNSPEC_H
#define CLFUZZ_SCHED_CAMPAIGNSPEC_H

#include <map>
#include <string>
#include <vector>

namespace clfuzz {

/// One parsed campaign declaration.
struct CampaignDecl {
  std::string Type; ///< "hunt", "diff", "emi" or "reduce"
  std::string Name; ///< `name=` param or the "c<I>-<type>" default
  std::map<std::string, std::string> Params; ///< flags map to "1"
};

/// Parses \p Spec (the literal --campaigns= value; a leading '@'
/// loads the named file first). On success returns true and fills
/// \p Out; on failure returns false and puts a message in \p Error.
bool parseCampaignSpec(const std::string &Spec,
                       std::vector<CampaignDecl> &Out, std::string &Error);

} // namespace clfuzz

#endif // CLFUZZ_SCHED_CAMPAIGNSPEC_H
