//===- CampaignSpec.cpp - --campaigns= specification parsing -----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sched/CampaignSpec.h"

#include <cstdio>

using namespace clfuzz;

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

bool parseOneDecl(const std::string &Entry, CampaignDecl &D,
                  std::string &Error) {
  size_t Open = Entry.find('(');
  std::string Type = trim(Open == std::string::npos
                              ? Entry
                              : Entry.substr(0, Open));
  if (Type != "hunt" && Type != "diff" && Type != "emi" &&
      Type != "reduce" && Type != "triage") {
    Error = "unknown campaign type '" + Type +
            "' (use hunt, diff, emi, reduce or triage)";
    return false;
  }
  D.Type = Type;
  if (Open == std::string::npos)
    return true;
  if (Entry.back() != ')') {
    Error = "missing ')' in campaign '" + Entry + "'";
    return false;
  }
  std::string Params = Entry.substr(Open + 1, Entry.size() - Open - 2);
  size_t Pos = 0;
  while (Pos <= Params.size()) {
    size_t Comma = Params.find(',', Pos);
    std::string P = trim(Comma == std::string::npos
                             ? Params.substr(Pos)
                             : Params.substr(Pos, Comma - Pos));
    if (!P.empty()) {
      size_t Eq = P.find('=');
      if (Eq == std::string::npos)
        D.Params[P] = "1"; // bare flag, like the CLI's --reduce
      else
        D.Params[trim(P.substr(0, Eq))] = trim(P.substr(Eq + 1));
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

} // namespace

bool clfuzz::parseCampaignSpec(const std::string &Spec,
                               std::vector<CampaignDecl> &Out,
                               std::string &Error) {
  std::string Text = Spec;
  if (!Text.empty() && Text[0] == '@') {
    std::string Path = Text.substr(1);
    std::FILE *F = std::fopen(Path.c_str(), "r");
    if (!F) {
      Error = "cannot open campaign file '" + Path + "'";
      return false;
    }
    Text.clear();
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Text.append(Buf, N);
    std::fclose(F);
    // Config-file niceties: '#' comments, one declaration per line.
    std::string Joined;
    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t Nl = Text.find('\n', Pos);
      std::string Line = Nl == std::string::npos
                             ? Text.substr(Pos)
                             : Text.substr(Pos, Nl - Pos);
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line = Line.substr(0, Hash);
      Line = trim(Line);
      if (!Line.empty()) {
        if (!Joined.empty())
          Joined += ';';
        Joined += Line;
      }
      if (Nl == std::string::npos)
        break;
      Pos = Nl + 1;
    }
    Text = Joined;
  }

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    // Split on ';' at paren depth 0 (param values never nest, but a
    // future value could contain ';' inside parens).
    int Depth = 0;
    size_t End = Pos;
    while (End < Text.size() && (Text[End] != ';' || Depth != 0)) {
      if (Text[End] == '(')
        ++Depth;
      else if (Text[End] == ')')
        --Depth;
      ++End;
    }
    std::string Entry = trim(Text.substr(Pos, End - Pos));
    if (!Entry.empty()) {
      CampaignDecl D;
      if (!parseOneDecl(Entry, D, Error))
        return false;
      auto It = D.Params.find("name");
      D.Name = It != D.Params.end()
                   ? It->second
                   : "c" + std::to_string(Out.size()) + "-" + D.Type;
      Out.push_back(std::move(D));
    }
    if (End >= Text.size())
      break;
    Pos = End + 1;
  }
  if (Out.empty()) {
    Error = "empty --campaigns= specification";
    return false;
  }
  return true;
}
