//===- CampaignScheduler.h - N campaigns over one shared backend *- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator-side campaign scheduler: runs N concurrent
/// campaigns (diff, hunt, EMI, plus reductions drained from the
/// ReductionQueue) over ONE shared ExecBackend — the step from "a
/// tool you run" to "a service many users submit to" (ROADMAP.md).
///
/// Model. A campaign is a CampaignTask: a stepwise state machine
/// whose step() performs one self-contained unit of work — typically
/// one ShardedCampaignRun shard, i.e. one backend batch. The
/// scheduler owns nothing about a campaign's internals; each grant
/// cycle it asks every live campaign whether it is ready, lets the
/// SchedPolicy pick one (Reduction-lane campaigns always preempt
/// Foreground ones — the explicit priority lane), and runs that
/// campaign's next step on the calling thread. Steps therefore
/// *serialize* over the shared backend: the backend's full in-flight
/// window (threads, worker processes, the remote fleet) belongs to
/// exactly one campaign at a time, and reassignment happens only
/// between steps — drain-then-reassign at shard boundaries, never
/// mid-job.
///
/// Determinism. Because a step is one pull-run-consume cycle in the
/// campaign's own submission order, the sequence of source pulls,
/// backend batches and sink calls any single campaign observes is
/// byte-for-byte the sequence its solo run performs — no matter how
/// many other campaigns interleave, which policy picks, or which
/// backend executes. That is the tentpole invariant
/// (SchedulerConformanceTest pins it across backends × worker counts
/// × cache states) and it holds for ANY policy, because a policy only
/// chooses when a campaign steps, never what a step does.
///
/// Accounting. Serialized steps make attribution exact: the scheduler
/// snapshots the shared OutcomeCache's counters and the process-wide
/// VM counters around every step and charges the deltas to the
/// stepped campaign. `clfuzz sched --stats` prints the per-campaign
/// breakdown; the sums equal the global counters (pinned by test).
///
/// docs/scheduler.md is the full design document.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SCHED_CAMPAIGNSCHEDULER_H
#define CLFUZZ_SCHED_CAMPAIGNSCHEDULER_H

#include "device/CompileCounters.h"
#include "exec/ExecBackend.h"
#include "exec/FleetRegistry.h"
#include "exec/OutcomeCache.h"
#include "sched/SchedPolicy.h"
#include "triage/Triage.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

/// A schedulable campaign: a stepwise state machine over a shared
/// backend. Implementations live in sched/Campaigns.h (hunt, diff,
/// EMI, reduce, the ReductionQueue lane); tests add synthetic ones.
class CampaignTask {
public:
  virtual ~CampaignTask();

  /// True once the campaign has finished all its work (report
  /// included). A done campaign is never stepped again.
  virtual bool done() const = 0;

  /// True when step() has work it can do right now. A not-done,
  /// not-ready campaign is waiting on another campaign's progress
  /// (e.g. a hunt waiting for the reduction lane to drain its queue).
  virtual bool ready() const { return true; }

  /// Performs one unit of work — at most one backend batch — on the
  /// calling thread. Called only when ready() && !done().
  virtual void step() = 0;

  /// Solo-driver fallback: blocks until ready() (or done()). Only
  /// meaningful for campaigns whose readiness another *thread* can
  /// change (a hunt over a threaded ReductionQueue); under the
  /// scheduler, readiness only changes between steps and this is
  /// never called.
  virtual void waitReady() {}

  /// Scheduling lane; Reduction-lane campaigns preempt Foreground
  /// ones at every grant.
  virtual SchedLane lane() const { return SchedLane::Foreground; }

  /// Number of distinct witnesses produced so far (deduped by
  /// hashDescriptor fingerprints) — the YieldWeighted policy's signal.
  virtual size_t distinctWitnesses() const { return 0; }

  /// Tests / jobs completed so far, for the per-campaign breakdown.
  virtual size_t testsDone() const { return 0; }
  virtual size_t jobsDone() const { return 0; }

  /// Exit code the driving command should return for this campaign
  /// (0 unless the campaign failed, e.g. an uninteresting reduce
  /// witness).
  virtual int exitCode() const { return 0; }
};

/// Runs one campaign to completion on the calling thread — the solo
/// drivers (`clfuzz hunt/diff/reduce`) are this loop, so a solo run
/// and a scheduled run execute the same task code path by
/// construction.
void runCampaignTask(CampaignTask &Task);

/// Per-campaign accounting, maintained by the scheduler from
/// around-step counter deltas.
struct CampaignStats {
  size_t Steps = 0;     ///< grants this campaign received
  size_t Tests = 0;     ///< tests completed (task-reported)
  size_t Jobs = 0;      ///< jobs completed (task-reported)
  size_t Witnesses = 0; ///< distinct witnesses (task-reported)
  OutcomeCacheStats Cache; ///< shared-cache deltas during its steps
  uint64_t VmInstructions = 0; ///< VM counter deltas during its steps
  uint64_t VmFused = 0;
  uint64_t VmLaunches = 0;
  uint64_t VmEngineReuses = 0;
  /// Per-phase compile profiler deltas during its steps (zero-valued,
  /// like the VM counters, when the backend compiles in worker
  /// processes the coordinator cannot see).
  CompileCounters Compile;
  /// Triage counter deltas during its steps. Witnesses/Probes accrue
  /// in the step that runs the triage (the reduction lane's, for a
  /// hunt), Clusters in the consuming campaign's drain step; both are
  /// inside serialized steps, so per-campaign lines sum exactly to
  /// the global counters.
  TriageCounters Triage;

  /// Fleet counter deltas during its steps (exec/FleetRegistry.h):
  /// joins adopted, drains completed, evictions, redials and job
  /// requeues its remote shards incurred. All counting happens inside
  /// RemoteBackend::run() — inside this campaign's serialized step —
  /// so per-campaign fleet_* lines sum exactly to the global totals.
  FleetCounters Fleet;
};

/// A campaign's handle inside the scheduler.
struct ScheduledCampaign {
  std::string Name;
  CampaignTask *Task = nullptr;
  CampaignStats Stats;
  /// Distinct-witness deltas of the most recent granted steps
  /// (bounded by SchedOptions::YieldWindow) — the YieldWeighted
  /// policy's recency window.
  std::deque<size_t> RecentYields;
};

/// Scheduler tuning.
struct SchedOptions {
  SchedPolicyKind Policy = SchedPolicyKind::RoundRobin;
  /// YieldWeighted: how many recent steps the witness-delta window
  /// covers.
  unsigned YieldWindow = 8;
  /// YieldWeighted: weight = 1 + YieldBoost * (window witness sum).
  unsigned YieldBoost = 4;
  /// The shared outcome cache, when one is configured — the scheduler
  /// snapshots its stats around steps for per-campaign attribution.
  std::shared_ptr<OutcomeCache> Cache;
};

/// The coordinator. Owns the grant loop and the accounting; the
/// backend and the tasks are caller-owned and must outlive it.
class CampaignScheduler {
public:
  CampaignScheduler(ExecBackend &Backend, SchedOptions Opts = {});

  /// Registers a campaign. All campaigns must be added before the
  /// first stepOnce(); names are display-only (stats, traces).
  ScheduledCampaign &add(std::string Name, CampaignTask &Task);

  /// Grants one step to the policy's pick among ready campaigns.
  /// Returns false when every campaign is done.
  bool stepOnce();

  /// Runs stepOnce() until every campaign is done.
  void runToCompletion();

  ExecBackend &backend() { return Backend; }
  const SchedOptions &options() const { return Opts; }
  const std::vector<ScheduledCampaign> &campaigns() const {
    return Campaigns;
  }

  /// Campaign index per grant, in grant order — the allocation trace
  /// the policy tests and `--stats` fairness numbers read.
  const std::vector<size_t> &allocationTrace() const { return Trace; }

private:
  unsigned weightOf(const ScheduledCampaign &C) const;

  ExecBackend &Backend;
  SchedOptions Opts;
  SchedPolicy Policy;
  std::vector<ScheduledCampaign> Campaigns;
  std::vector<size_t> Trace;
};

} // namespace clfuzz

#endif // CLFUZZ_SCHED_CAMPAIGNSCHEDULER_H
