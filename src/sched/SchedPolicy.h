//===- SchedPolicy.h - Campaign slot-allocation policies --------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slot-allocation policies for the campaign scheduler (src/sched/):
/// given the set of campaigns that are ready to run, decide which one
/// gets the backend for its next shard. Policies never touch
/// execution — a pick only reorders *when* a campaign's next shard
/// runs, never *what* it runs — so every policy preserves the
/// byte-identity invariant by construction.
///
///  * RoundRobin: cycle through the ready set in campaign order; the
///    fair-share baseline.
///  * YieldWeighted: smooth weighted round-robin (the classic nginx
///    algorithm: integer credits, no floats, no randomness) with each
///    campaign's weight boosted by the distinct witnesses it produced
///    over its recent steps — budget shifts toward campaigns currently
///    yielding, per "Fuzzing at Scale: The Untold Story of the
///    Scheduler" (PAPERS.md), while barren campaigns keep a weight-1
///    floor so they are never starved outright.
///
/// docs/scheduler.md describes both policies and the determinism
/// argument.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SCHED_SCHEDPOLICY_H
#define CLFUZZ_SCHED_SCHEDPOLICY_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clfuzz {

enum class SchedPolicyKind : uint8_t {
  RoundRobin,
  YieldWeighted,
};

/// "rr" or "yield".
const char *schedPolicyName(SchedPolicyKind K);

/// Parses a --sched-policy= value; returns false on an unknown name.
bool parseSchedPolicy(const std::string &Name, SchedPolicyKind &Out);

/// Campaign lanes. The scheduler services Reduction-lane campaigns
/// before Foreground ones whenever both are ready — the explicit
/// priority lane that keeps `hunt --reduce` reductions from starving
/// under a busy foreground campaign.
enum class SchedLane : uint8_t {
  Foreground,
  Reduction,
};

/// "fg" or "reduce".
const char *schedLaneName(SchedLane L);

/// Deterministic slot-allocation policy. pick() is a pure function of
/// the pick history and its arguments: no clocks, no randomness.
class SchedPolicy {
public:
  explicit SchedPolicy(SchedPolicyKind Kind) : Kind(Kind) {}

  SchedPolicyKind kind() const { return Kind; }

  /// Picks one campaign id out of \p Candidates (non-empty, strictly
  /// increasing ids). \p Weights[I] is Candidates[I]'s current weight
  /// (>= 1); RoundRobin ignores it.
  size_t pick(const std::vector<size_t> &Candidates,
              const std::vector<unsigned> &Weights);

private:
  SchedPolicyKind Kind;
  /// RoundRobin: the last winner, so the next pick is the first ready
  /// campaign after it in cyclic id order.
  size_t LastPick = static_cast<size_t>(-1);
  /// YieldWeighted: smooth-WRR credit per campaign id. Each pick adds
  /// every candidate's weight to its credit, picks the highest credit
  /// (tie: smaller id), and charges the winner the round's total — so
  /// over time each campaign's share of picks converges to its share
  /// of the weights, with no bursts.
  std::map<size_t, long long> Credit;
};

} // namespace clfuzz

#endif // CLFUZZ_SCHED_SCHEDPOLICY_H
