//===- CampaignScheduler.cpp - N campaigns over one shared backend -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sched/CampaignScheduler.h"

#include "vm/VM.h"

#include <stdexcept>

using namespace clfuzz;

CampaignTask::~CampaignTask() = default;

void clfuzz::runCampaignTask(CampaignTask &Task) {
  while (!Task.done()) {
    if (Task.ready())
      Task.step();
    else
      Task.waitReady();
  }
}

CampaignScheduler::CampaignScheduler(ExecBackend &Backend, SchedOptions Opts)
    : Backend(Backend), Opts(Opts), Policy(Opts.Policy) {}

ScheduledCampaign &CampaignScheduler::add(std::string Name,
                                          CampaignTask &Task) {
  ScheduledCampaign C;
  C.Name = std::move(Name);
  C.Task = &Task;
  Campaigns.push_back(std::move(C));
  return Campaigns.back();
}

unsigned CampaignScheduler::weightOf(const ScheduledCampaign &C) const {
  // Weight floor of 1 keeps barren campaigns scheduled (no absolute
  // starvation); recent distinct witnesses boost the share.
  size_t WindowSum = 0;
  for (size_t D : C.RecentYields)
    WindowSum += D;
  return static_cast<unsigned>(1 + Opts.YieldBoost * WindowSum);
}

bool CampaignScheduler::stepOnce() {
  // Ready set, with the Reduction lane preempting: whenever any
  // reduction-lane campaign is ready, only lane campaigns are
  // candidates this grant — queued reductions can't starve behind a
  // busy foreground campaign.
  std::vector<size_t> Candidates;
  bool LaneReady = false;
  bool AllDone = true;
  for (size_t I = 0; I != Campaigns.size(); ++I) {
    CampaignTask &T = *Campaigns[I].Task;
    if (T.done())
      continue;
    AllDone = false;
    if (!T.ready())
      continue;
    if (T.lane() == SchedLane::Reduction && !LaneReady) {
      LaneReady = true;
      Candidates.clear();
    }
    if (T.lane() == SchedLane::Reduction || !LaneReady)
      Candidates.push_back(I);
  }
  if (AllDone)
    return false;
  if (Candidates.empty()) {
    // Every live campaign is waiting on work only another *thread*
    // can produce. Under the scheduler's single-threaded grant loop
    // with scheduler-driven queues this is unreachable (a hunt waits
    // only on its reduction lane, which is ready whenever the queue
    // has jobs); a threaded queue can briefly park us here, so wait
    // on the first waiter rather than spinning.
    for (ScheduledCampaign &C : Campaigns)
      if (!C.Task->done()) {
        C.Task->waitReady();
        return true;
      }
    throw std::logic_error("scheduler stalled: no campaign ready or done");
  }

  std::vector<unsigned> Weights;
  Weights.reserve(Candidates.size());
  for (size_t I : Candidates)
    Weights.push_back(weightOf(Campaigns[I]));
  size_t Picked = Policy.pick(Candidates, Weights);
  ScheduledCampaign &C = Campaigns[Picked];

  // Serialized steps make attribution exact: every cache lookup,
  // compile phase and VM launch between the snapshots belongs to this
  // campaign's step.
  OutcomeCacheStats Cache0;
  if (Opts.Cache)
    Cache0 = Opts.Cache->stats();
  VmCounters Vm0 = vmCounters();
  CompileCounters Cc0 = compileCounters();
  TriageCounters Tr0 = triageCounters();
  FleetCounters Fl0 = fleetCounters();
  size_t Witness0 = C.Task->distinctWitnesses();

  C.Task->step();

  if (Opts.Cache) {
    OutcomeCacheStats Cache1 = Opts.Cache->stats();
    C.Stats.Cache.Hits += Cache1.Hits - Cache0.Hits;
    C.Stats.Cache.Misses += Cache1.Misses - Cache0.Misses;
    C.Stats.Cache.Coalesced += Cache1.Coalesced - Cache0.Coalesced;
    C.Stats.Cache.DiskHits += Cache1.DiskHits - Cache0.DiskHits;
    C.Stats.Cache.BadEntries += Cache1.BadEntries - Cache0.BadEntries;
  }
  VmCounters Vm1 = vmCounters();
  C.Stats.VmInstructions += Vm1.Instructions - Vm0.Instructions;
  C.Stats.VmFused += Vm1.FusedExecuted - Vm0.FusedExecuted;
  C.Stats.VmLaunches += Vm1.Launches - Vm0.Launches;
  C.Stats.VmEngineReuses += Vm1.EngineReuses - Vm0.EngineReuses;
  CompileCounters Cc1 = compileCounters();
  C.Stats.Compile.Parses += Cc1.Parses - Cc0.Parses;
  C.Stats.Compile.ParseNs += Cc1.ParseNs - Cc0.ParseNs;
  C.Stats.Compile.Semas += Cc1.Semas - Cc0.Semas;
  C.Stats.Compile.SemaNs += Cc1.SemaNs - Cc0.SemaNs;
  C.Stats.Compile.Clones += Cc1.Clones - Cc0.Clones;
  C.Stats.Compile.CloneNs += Cc1.CloneNs - Cc0.CloneNs;
  C.Stats.Compile.Opts += Cc1.Opts - Cc0.Opts;
  C.Stats.Compile.OptNs += Cc1.OptNs - Cc0.OptNs;
  C.Stats.Compile.Codegens += Cc1.Codegens - Cc0.Codegens;
  C.Stats.Compile.CodegenNs += Cc1.CodegenNs - Cc0.CodegenNs;
  C.Stats.Compile.Execs += Cc1.Execs - Cc0.Execs;
  C.Stats.Compile.ExecNs += Cc1.ExecNs - Cc0.ExecNs;
  TriageCounters Tr1 = triageCounters();
  C.Stats.Triage.Witnesses += Tr1.Witnesses - Tr0.Witnesses;
  C.Stats.Triage.Probes += Tr1.Probes - Tr0.Probes;
  C.Stats.Triage.Clusters += Tr1.Clusters - Tr0.Clusters;
  FleetCounters Fl1 = fleetCounters();
  C.Stats.Fleet.Joins += Fl1.Joins - Fl0.Joins;
  C.Stats.Fleet.Leaves += Fl1.Leaves - Fl0.Leaves;
  C.Stats.Fleet.Evictions += Fl1.Evictions - Fl0.Evictions;
  C.Stats.Fleet.Redials += Fl1.Redials - Fl0.Redials;
  C.Stats.Fleet.Requeues += Fl1.Requeues - Fl0.Requeues;

  ++C.Stats.Steps;
  C.Stats.Tests = C.Task->testsDone();
  C.Stats.Jobs = C.Task->jobsDone();
  C.Stats.Witnesses = C.Task->distinctWitnesses();
  C.RecentYields.push_back(C.Stats.Witnesses - Witness0);
  while (C.RecentYields.size() > Opts.YieldWindow)
    C.RecentYields.pop_front();
  Trace.push_back(Picked);
  return true;
}

void CampaignScheduler::runToCompletion() {
  while (stepOnce())
    ;
}
