//===- Campaigns.h - Schedulable campaign task builders ---------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CampaignTask implementations for the five campaign types the
/// scheduler multiplexes — differential diff, hunt (with background
/// reduction and optional triage), EMI, witness reduction, and
/// witness triage — plus the ReductionQueue priority lane. The solo commands (`clfuzz hunt/diff/reduce`) and
/// the multi-campaign driver (`clfuzz sched`) build their campaigns
/// through these same factories and run the same step() code, so a
/// campaign's report is byte-identical solo or interleaved *by
/// construction*; SchedulerConformanceTest additionally pins it.
///
/// Every task writes its report to a caller-supplied FILE* (stdout
/// for the solo commands, a per-campaign stream under `clfuzz sched`)
/// and reports distinct-witness fingerprints (hashDescriptor of the
/// witness cell's job) for the YieldWeighted policy.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SCHED_CAMPAIGNS_H
#define CLFUZZ_SCHED_CAMPAIGNS_H

#include "gen/Generator.h"
#include "oracle/ReductionQueue.h"
#include "sched/CampaignScheduler.h"

#include <cstdio>
#include <memory>
#include <string>

namespace clfuzz {

/// `clfuzz diff`: one kernel across the whole configuration zoo.
struct DiffSpec {
  GenOptions Gen;                 ///< mode / seed / EMI blocks
  std::string Format = "text";    ///< "text", "csv" or "jsonl"
};

/// `clfuzz hunt`: a differential mini-campaign over the
/// above-threshold configurations, optionally reducing witnesses in
/// the background.
struct HuntSpec {
  GenMode Mode = GenMode::All;
  /// The mode string as the user wrote it — echoed in the summary
  /// line's rerun hint.
  std::string ModeName = "ALL";
  uint64_t Seed = 1;
  unsigned Count = 20;
  std::string Format = "text";
  /// Submit wrong-code witnesses for background reduction (text
  /// format only, like the solo command).
  bool Reduce = false;
  /// Reduction tuning for --reduce (candidate budget, backend when
  /// self-built, injected shared backend under the scheduler, ...).
  ReducerOptions ReduceOpts;
  /// Reduction execution: 0 = scheduler-driven (a ReductionLaneTask
  /// services the queue — the scheduler's priority lane); >= 1 =
  /// that many background threads (the solo `hunt --reduce` mode).
  unsigned ReduceWorkers = 0;
  /// Buffer per-job JSONL traces and write them to this path after
  /// the drain ("" = no trace, "-" = stderr).
  std::string ReduceTracePath;
  /// Triage every reduced witness (pass bisection + bug clustering,
  /// src/triage/): each reduction job carries a TriageRequest and the
  /// drain report gains per-witness triage lines plus a distinct-bug
  /// summary. Requires Reduce.
  bool Triage = false;
  /// Write a machine-readable triage report here ("" = none,
  /// "-" = stderr) in TriageFormat.
  std::string TriageOut;
  /// "csv" or "jsonl" for TriageOut.
  std::string TriageFormat = "csv";
};

/// EMI campaign over the above-threshold configurations: usable bases
/// are collected per §7.4 (dead-array inversion must change the
/// reference result), then each base's 40 prune variants are swept
/// and voted per (config, opt) cell.
struct EmiSpec {
  unsigned Bases = 2;
  unsigned MinBlocks = 1;
  unsigned MaxBlocks = 3;
  uint64_t SeedBase = 100000;
};

/// `clfuzz reduce`: shrink one witness kernel.
struct ReduceSpec {
  GenOptions Gen;
  int ConfigId = 0;
  bool Opt = false;
  /// "wrong", "crash", "timeout" or "build-failure".
  std::string Expect = "wrong";
  /// Candidate evaluation tuning; set Opts.Backend to evaluate on a
  /// shared (scheduler-owned) backend.
  ReducerOptions Opts;
  std::string TracePath; ///< JSONL trace ("" = none, "-" = stderr)
};

/// `clfuzz triage`: reduce one wrong-code witness, then bisect the
/// optimisation pipeline and derive its cluster key (src/triage/).
struct TriageSpec {
  GenOptions Gen;
  int ConfigId = 0;
  bool Opt = false;
  /// Candidate/probe evaluation tuning; Opts.Backend (shared,
  /// scheduler-owned) and Opts.DispatchPriority flow through to the
  /// bisection probes unchanged.
  ReducerOptions Opts;
  /// "text", "csv" or "jsonl".
  std::string Format = "text";
};

/// Services a scheduler-driven ReductionQueue (Workers == 0): each
/// step runs one queued reduction to completion on the calling
/// thread. Lives in the Reduction lane, so the scheduler grants it
/// slots ahead of every foreground campaign while jobs are queued.
/// The task is done when \p Closed reports the producing campaign
/// stopped submitting AND the queue is fully drained.
class ReductionLaneTask final : public CampaignTask {
public:
  ReductionLaneTask(ReductionQueue &Queue, std::function<bool()> Closed)
      : Queue(Queue), Closed(std::move(Closed)) {}

  bool done() const override { return Closed() && Queue.allDone(); }
  bool ready() const override { return Queue.hasPending(); }
  void step() override {
    if (Queue.runNextPending())
      ++JobsRun;
  }
  SchedLane lane() const override { return SchedLane::Reduction; }
  size_t jobsDone() const override { return JobsRun; }

private:
  ReductionQueue &Queue;
  std::function<bool()> Closed;
  size_t JobsRun = 0;
};

/// A hunt campaign's moving parts, wired together by
/// makeHuntCampaign. Without reduction, only Main is set; with
/// threaded reduction (solo), Main + Queue; with scheduler-driven
/// reduction, Main + Queue + Lane (register BOTH tasks with the
/// scheduler).
struct HuntCampaign {
  std::unique_ptr<ReductionQueue> Queue;
  std::unique_ptr<CampaignTask> Main;
  std::unique_ptr<CampaignTask> Lane;
};

/// Builds a diff campaign writing its report to \p Out.
std::unique_ptr<CampaignTask> makeDiffTask(const DiffSpec &Spec,
                                           ExecBackend &Backend,
                                           std::FILE *Out);

/// Builds a hunt campaign over \p Backend, sharding by \p ShardSize.
/// Spec.ReduceOpts decides where reductions evaluate; Out receives
/// the findings stream and the report.
HuntCampaign makeHuntCampaign(const HuntSpec &Spec, unsigned ShardSize,
                              ExecBackend &Backend, std::FILE *Out);

/// Builds an EMI campaign over \p Backend (above-threshold
/// configurations), sharding variants by \p ShardSize.
std::unique_ptr<CampaignTask> makeEmiTask(const EmiSpec &Spec,
                                          unsigned ShardSize,
                                          ExecBackend &Backend,
                                          std::FILE *Out);

/// Builds a reduce campaign. Whether candidates evaluate on a private
/// or a shared backend is Spec.Opts.Backend's choice; the report goes
/// to \p Out.
std::unique_ptr<CampaignTask> makeReduceTask(const ReduceSpec &Spec,
                                             std::FILE *Out);

/// Builds a triage campaign: one witness reduced then bisected, the
/// report (text line or csv/jsonl row) written to \p Out.
std::unique_ptr<CampaignTask> makeTriageTask(const TriageSpec &Spec,
                                             std::FILE *Out);

} // namespace clfuzz

#endif // CLFUZZ_SCHED_CAMPAIGNS_H
