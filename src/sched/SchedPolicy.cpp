//===- SchedPolicy.cpp - Campaign slot-allocation policies -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sched/SchedPolicy.h"

#include <cassert>

using namespace clfuzz;

const char *clfuzz::schedPolicyName(SchedPolicyKind K) {
  switch (K) {
  case SchedPolicyKind::RoundRobin:
    return "rr";
  case SchedPolicyKind::YieldWeighted:
    return "yield";
  }
  return "rr";
}

bool clfuzz::parseSchedPolicy(const std::string &Name,
                              SchedPolicyKind &Out) {
  if (Name == "rr" || Name == "round-robin") {
    Out = SchedPolicyKind::RoundRobin;
    return true;
  }
  if (Name == "yield" || Name == "yield-weighted") {
    Out = SchedPolicyKind::YieldWeighted;
    return true;
  }
  return false;
}

const char *clfuzz::schedLaneName(SchedLane L) {
  switch (L) {
  case SchedLane::Foreground:
    return "fg";
  case SchedLane::Reduction:
    return "reduce";
  }
  return "fg";
}

size_t SchedPolicy::pick(const std::vector<size_t> &Candidates,
                         const std::vector<unsigned> &Weights) {
  assert(!Candidates.empty() && "pick() needs at least one candidate");
  assert(Weights.size() == Candidates.size());

  if (Kind == SchedPolicyKind::RoundRobin) {
    // First candidate id strictly after the last winner, cyclically:
    // with a stable ready set this is exact round-robin; when
    // campaigns come and go it degrades gracefully to "next in id
    // order".
    for (size_t Id : Candidates)
      if (Id > LastPick)
        return LastPick = Id;
    return LastPick = Candidates.front();
  }

  // Smooth weighted round-robin: every candidate earns its weight,
  // the highest credit wins (tie: smaller id, because Candidates is
  // increasing and the comparison is strict), and the winner is
  // charged the round's total weight.
  long long Total = 0;
  for (unsigned W : Weights)
    Total += W;
  size_t Winner = Candidates.front();
  long long Best = 0;
  for (size_t I = 0; I != Candidates.size(); ++I) {
    long long &C = Credit[Candidates[I]];
    C += Weights[I];
    if (I == 0 || C > Best) {
      Best = C;
      Winner = Candidates[I];
    }
  }
  Credit[Winner] -= Total;
  return Winner;
}
