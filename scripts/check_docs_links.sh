#!/usr/bin/env bash
# Link checker for the repo's markdown: every relative link target in
# README.md, docs/*.md and the other top-level pages must exist, so
# docs/ cross-references and README links cannot rot. External
# (http/https/mailto) links are skipped — CI must not depend on the
# network. Run from anywhere; checks the repo the script lives in.
set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
FAIL=0
CHECKED=0

# Markdown files under version control we care about (top level + docs/).
FILES=$(find "$REPO" -maxdepth 2 -name '*.md' \
          -not -path "$REPO/build*" -not -path "$REPO/.git/*" | sort)

for MD in $FILES; do
  DIR="$(dirname "$MD")"
  # Extract inline link targets: [text](target). Reference-style links
  # are not used in this repo.
  TARGETS=$(grep -o '](\([^)]*\))' "$MD" | sed 's/^](//; s/)$//')
  for TARGET in $TARGETS; do
    case "$TARGET" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;; # same-page anchor
    esac
    # Strip a trailing #anchor from file links.
    FILE_PART="${TARGET%%#*}"
    [ -z "$FILE_PART" ] && continue
    CHECKED=$((CHECKED + 1))
    if [ ! -e "$DIR/$FILE_PART" ]; then
      echo "BROKEN: $MD -> $TARGET" >&2
      FAIL=1
    fi
  done
done

if [ "$FAIL" -ne 0 ]; then
  echo "docs link check failed" >&2
  exit 1
fi
echo "docs link check: $CHECKED relative links OK"
