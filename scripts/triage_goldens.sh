#!/usr/bin/env bash
# Triage conformance driven through the real CLI: the same witnesses
# triaged solo and through `clfuzz sched` must produce byte-identical
# reports, a warm --cache-dir re-run must answer probes from the cache
# without moving a byte, the per-campaign --stats triage counters must
# sum to the campaign=total line, and the reports must match the
# committed goldens in scripts/goldens/ (which pin the report schema:
# an incompatible change shows up as a golden diff, not as silent
# drift). Usage: scripts/triage_goldens.sh [build-dir]
set -eu

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"
CLFUZZ="$BUILD/clfuzz"
GOLDENS="$REPO/scripts/goldens"

if [ ! -x "$CLFUZZ" ]; then
  echo "triage goldens: $CLFUZZ not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== hunt --reduce --triage: solo == sched, byte for byte"
"$CLFUZZ" hunt --mode=BASIC --seed=1014 --count=4 --backend=inline \
  --reduce --triage --triage-out="$WORK/solo.csv" > "$WORK/solo.txt"
mkdir -p "$WORK/sched-out"
"$CLFUZZ" sched --backend=inline --out-dir="$WORK/sched-out" \
  --campaigns="hunt(name=h,mode=BASIC,seed=1014,count=4,reduce,triage,triage-out=$WORK/sched.csv)" \
  > /dev/null
diff "$WORK/solo.txt" "$WORK/sched-out/h.txt"
diff "$WORK/solo.csv" "$WORK/sched.csv"

echo "== clfuzz triage: solo == sched triage(...) campaign"
"$CLFUZZ" triage --mode=ALL --seed=39 --config=14 --opt \
  > "$WORK/triage-solo.txt"
mkdir -p "$WORK/sched-triage"
"$CLFUZZ" sched --backend=inline --out-dir="$WORK/sched-triage" \
  --campaigns='triage(name=t,mode=ALL,seed=39,config=14,opt)' > /dev/null
diff "$WORK/triage-solo.txt" "$WORK/sched-triage/t.txt"

echo "== warm --cache-dir re-run: byte-identical, probes served from cache"
"$CLFUZZ" triage --mode=ALL --seed=39 --config=14 --opt \
  --cache-dir="$WORK/oc" > "$WORK/triage-cold.txt"
"$CLFUZZ" triage --mode=ALL --seed=39 --config=14 --opt \
  --cache-dir="$WORK/oc" --stats \
  > "$WORK/triage-warm.txt" 2> "$WORK/warm-stats.txt"
diff "$WORK/triage-solo.txt" "$WORK/triage-cold.txt"
diff "$WORK/triage-solo.txt" "$WORK/triage-warm.txt"
grep -Eq 'cache_hits=[1-9]' "$WORK/warm-stats.txt" || {
  echo "warm triage run never hit the cache:" >&2
  cat "$WORK/warm-stats.txt" >&2
  exit 1
}
grep -Eq 'triage_witnesses=1 triage_probes=[1-9]' "$WORK/warm-stats.txt" || {
  echo "missing triage counter line:" >&2
  cat "$WORK/warm-stats.txt" >&2
  exit 1
}

echo "== per-campaign --stats triage counters sum to campaign=total"
mkdir -p "$WORK/sched-stats-out"
"$CLFUZZ" sched --backend=inline --out-dir="$WORK/sched-stats-out" --stats \
  --campaigns='hunt(name=h,mode=BASIC,seed=1014,count=4,reduce,triage);triage(name=t,mode=ALL,seed=39,config=14,opt)' \
  > /dev/null 2> "$WORK/sched-stats.txt"
python3 - "$WORK/sched-stats.txt" <<'EOF'
import re, sys
fields = ['triage_witnesses', 'triage_probes', 'triage_clusters']
per, total = {f: 0 for f in fields}, None
for line in open(sys.argv[1]):
    m = re.match(r'campaign=(\S+) triage_witnesses=', line)
    if not m:
        continue
    vals = {f: int(re.search(f + r'=(\d+)', line).group(1)) for f in fields}
    if m.group(1) == 'total':
        total = vals
    else:
        for f in fields:
            per[f] += vals[f]
assert total is not None, 'no campaign=total triage line'
assert any(total.values()), 'all-zero triage totals: nothing was triaged'
assert per == total, (per, total)
EOF

echo "== committed goldens"
diff "$GOLDENS/hunt_triage_basic_1014.txt" "$WORK/solo.txt"
diff "$GOLDENS/hunt_triage_basic_1014.csv" "$WORK/solo.csv"
diff "$GOLDENS/triage_all_seed39_config14.txt" "$WORK/triage-solo.txt"

echo "triage goldens: all checks passed"
