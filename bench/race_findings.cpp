//===- race_findings.cpp - Reproduces the §2.4 race discoveries ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's benchmark-race finding (§2.4): the authors
/// "wasted significant effort" reducing Parboil spmv and Rodinia
/// myocyte before discovering previously unidentified data races,
/// which they reported and both projects confirmed. This harness runs
/// the whole mini-suite under the VM's happens-before race detector
/// and prints the reports, plus a schedule-sweep demonstrating that
/// myocyte's race is result-visible while spmv's is benign.
///
/// All runs go through the pipeline's ExecBackend (--backend /
/// --threads), so the audit parallelises — and isolates — like any
/// campaign.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Benchmarks.h"
#include "exec/ExecBackend.h"

#include <cstdio>
#include <memory>
#include <set>

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  std::unique_ptr<ExecBackend> Backend = makeBackend(Args.execOptions());
  std::vector<Benchmark> Suite = buildBenchmarkSuite();

  std::printf("Data-race audit of the mini Parboil/Rodinia suite "
              "(happens-before detector)\n\n");
  printRule();
  std::printf("%-11s %-8s %-60s\n", "Benchmark", "racy?", "report");
  printRule();

  // One reference run per benchmark with the detector on; the audit is
  // a single backend batch.
  RunSettings Detect;
  Detect.DetectRaces = true;
  std::vector<ExecJob> Jobs;
  Jobs.reserve(Suite.size());
  for (const Benchmark &B : Suite)
    Jobs.push_back(ExecJob::onReference(B.Test, false, Detect));
  std::vector<RunOutcome> Outs = Backend->run(Jobs);

  unsigned Races = 0;
  for (size_t I = 0; I != Suite.size(); ++I) {
    const Benchmark &B = Suite[I];
    const RunOutcome &O = Outs[I];
    if (!O.ok()) {
      std::printf("%-11s %-8s %s\n", B.Name.c_str(), "error",
                  O.Message.c_str());
      continue;
    }
    Races += O.RaceFound;
    std::printf("%-11s %-8s %-60s\n", B.Name.c_str(),
                O.RaceFound ? "RACE" : "clean",
                O.RaceFound ? O.RaceMessage.c_str() : "-");
  }
  printRule();
  std::printf("races found: %u (paper: 2 - Parboil spmv and Rodinia "
              "myocyte, both confirmed upstream)\n\n",
              Races);

  // Schedule sweep: is the race result-visible? The 8 scheduler seeds
  // of every racy benchmark go out as one batch too.
  std::printf("schedule sensitivity over 8 scheduler seeds:\n");
  std::vector<const Benchmark *> Racy;
  Jobs.clear();
  for (const Benchmark &B : Suite) {
    if (!B.HasPlantedRace)
      continue;
    Racy.push_back(&B);
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      RunSettings S;
      S.SchedulerSeed = Seed;
      Jobs.push_back(ExecJob::onReference(B.Test, false, S));
    }
  }
  Outs = Backend->run(Jobs);
  for (size_t I = 0; I != Racy.size(); ++I) {
    std::set<uint64_t> Outputs;
    for (size_t S = 0; S != 8; ++S) {
      const RunOutcome &O = Outs[I * 8 + S];
      if (O.ok())
        Outputs.insert(O.OutputHash);
    }
    std::printf("  %-9s: %zu distinct outputs -> %s\n",
                Racy[I]->Name.c_str(), Outputs.size(),
                Outputs.size() > 1
                    ? "nondeterministic (defeats compiler testing)"
                    : "benign race (stable output)");
  }
  return 0;
}
