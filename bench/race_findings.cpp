//===- race_findings.cpp - Reproduces the §2.4 race discoveries ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's benchmark-race finding (§2.4): the authors
/// "wasted significant effort" reducing Parboil spmv and Rodinia
/// myocyte before discovering previously unidentified data races,
/// which they reported and both projects confirmed. This harness runs
/// the whole mini-suite under the VM's happens-before race detector
/// and prints the reports, plus a schedule-sweep demonstrating that
/// myocyte's race is result-visible while spmv's is benign.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Benchmarks.h"

#include <cstdio>
#include <set>

using namespace clfuzz;
using namespace clfuzz::bench;

int main() {
  std::printf("Data-race audit of the mini Parboil/Rodinia suite "
              "(happens-before detector)\n\n");
  printRule();
  std::printf("%-11s %-8s %-60s\n", "Benchmark", "racy?", "report");
  printRule();
  unsigned Races = 0;
  for (const Benchmark &B : buildBenchmarkSuite()) {
    RunSettings S;
    S.DetectRaces = true;
    RunOutcome O = runTestOnReference(B.Test, false, S);
    if (!O.ok()) {
      std::printf("%-11s %-8s %s\n", B.Name.c_str(), "error",
                  O.Message.c_str());
      continue;
    }
    Races += O.RaceFound;
    std::printf("%-11s %-8s %-60s\n", B.Name.c_str(),
                O.RaceFound ? "RACE" : "clean",
                O.RaceFound ? O.RaceMessage.c_str() : "-");
  }
  printRule();
  std::printf("races found: %u (paper: 2 - Parboil spmv and Rodinia "
              "myocyte, both confirmed upstream)\n\n",
              Races);

  // Schedule sweep: is the race result-visible?
  std::printf("schedule sensitivity over 8 scheduler seeds:\n");
  for (const Benchmark &B : buildBenchmarkSuite()) {
    if (!B.HasPlantedRace)
      continue;
    std::set<uint64_t> Outputs;
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      RunSettings S;
      S.SchedulerSeed = Seed;
      RunOutcome O = runTestOnReference(B.Test, false, S);
      if (O.ok())
        Outputs.insert(O.OutputHash);
    }
    std::printf("  %-9s: %zu distinct outputs -> %s\n", B.Name.c_str(),
                Outputs.size(),
                Outputs.size() > 1
                    ? "nondeterministic (defeats compiler testing)"
                    : "benign race (stable output)");
  }
  return 0;
}
