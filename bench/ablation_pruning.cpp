//===- ablation_pruning.cpp - Pruning-strategy ablation -----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Ablation for the §7.4 closing observation: the paper found its
/// novel *lift* pruning "slightly less effective overall than the
/// existing leaf and compound strategies". This harness measures, per
/// strategy in isolation (p = 0.6 on one knob, 0 on the others), how
/// many EMI base programs induce a defect on the buggy above-threshold
/// configurations, plus the all-strategies mix.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "emi/Emi.h"
#include "oracle/Oracle.h"

#include <cstdio>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

struct Strategy {
  const char *Name;
  PruneOptions Probe;
};

} // namespace

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned Bases = Args.Kernels ? Args.Kernels : (Args.Full ? 60 : 8);
  unsigned VariantsPerBase = 8;

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<const DeviceConfig *> Targets;
  for (int Id : {1, 12, 13, 14}) // optimisation-sensitive configs
    Targets.push_back(&configById(Registry, Id));

  Strategy Strategies[4];
  Strategies[0] = {"leaf", {}};
  Strategies[0].Probe.PLeaf = 0.6;
  Strategies[1] = {"compound", {}};
  Strategies[1].Probe.PCompound = 0.6;
  Strategies[2] = {"lift", {}};
  Strategies[2].Probe.PLift = 0.6;
  Strategies[3] = {"mixed", {}};
  Strategies[3].Probe.PLeaf = 0.3;
  Strategies[3].Probe.PCompound = 0.3;
  Strategies[3].Probe.PLift = 0.3;

  std::printf("Pruning-strategy ablation (%u bases, %u variants per "
              "base per strategy, configs 1/12/13/14 at both opt "
              "levels)\n\n",
              Bases, VariantsPerBase);
  printRule();
  std::printf("%-10s %18s %18s\n", "strategy", "defect-inducing",
              "prunings applied");
  printRule();

  for (const Strategy &S : Strategies) {
    unsigned Defects = 0;
    unsigned TotalPrunings = 0;
    for (unsigned B = 0; B != Bases; ++B) {
      GenOptions GO;
      GO.Mode = GenMode::All;
      GO.Seed = Args.Seed + 31 * B;
      GO.NumEmiBlocks = 3;
      GO.MinThreads = 48;
      GO.MaxThreads = 192;

      std::vector<TestCase> Variants;
      for (unsigned V = 0; V != VariantsPerBase; ++V) {
        PruneOptions P = S.Probe;
        P.Seed = Args.Seed + 977 * B + V;
        // Count prunings on a scratch copy.
        GeneratedKernel K = generateKernel(GO);
        TotalPrunings += pruneEmiBlocks(*K.Ctx, P);
        Variants.push_back(makeEmiVariant(GO, P));
      }

      bool Induced = false;
      for (const DeviceConfig *C : Targets) {
        for (bool Opt : {false, true}) {
          std::vector<RunOutcome> Outs;
          for (const TestCase &V : Variants)
            Outs.push_back(runTestOnConfig(V, *C, Opt));
          EmiBaseVerdict Verdict = classifyEmiVariants(Outs);
          Induced |= Verdict.Wrong || Verdict.InducedBF ||
                     Verdict.InducedCrash;
        }
      }
      Defects += Induced;
    }
    std::printf("%-10s %13u / %-3u %18u\n", S.Name, Defects, Bases,
                TotalPrunings);
  }
  printRule();
  std::printf("\npaper: lift was slightly less effective than leaf "
              "and compound, and slightly reduced their effectiveness "
              "when combined.\n");
  return 0;
}
