//===- perf_microbench.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Throughput microbenchmarks for the pipeline stages: kernel
/// generation per mode, parsing, the optimisation pipeline, bytecode
/// codegen, VM execution, and the end-to-end driver path. These bound
/// how large a campaign a given time budget affords (the paper ran
/// ~58,000 tests per configuration pair).
///
//===----------------------------------------------------------------------===//

#include "device/Driver.h"
#include "exec/JobSerialize.h"
#include "gen/Generator.h"
#include "minicl/ASTClone.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "opt/Pass.h"
#include "oracle/Campaign.h"
#include "support/Arena.h"
#include "vm/Codegen.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

using namespace clfuzz;

static void BM_GenerateKernel(benchmark::State &State) {
  GenMode Mode = static_cast<GenMode>(State.range(0));
  uint64_t Seed = 1;
  for (auto _ : State) {
    GenOptions GO;
    GO.Mode = Mode;
    GO.Seed = Seed++;
    GeneratedKernel K = generateKernel(GO);
    benchmark::DoNotOptimize(K.Source.data());
  }
  State.SetLabel(genModeName(Mode));
}
BENCHMARK(BM_GenerateKernel)->DenseRange(0, 5);

namespace {

GeneratedKernel &sampleKernel() {
  static GeneratedKernel K = [] {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = 12345;
    return generateKernel(GO);
  }();
  return K;
}

} // namespace

static void BM_ParseAndSema(benchmark::State &State) {
  const std::string &Source = sampleKernel().Source;
  for (auto _ : State) {
    ASTContext Ctx;
    DiagEngine Diags;
    bool Ok = parseProgram(Source, Ctx, Diags);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParseAndSema);

/// Parsing alone (no sema), the irreducible cost of admitting one
/// kernel source — what every cell of a column used to pay and the
/// shared front end now pays once.
static void BM_ParseOnly(benchmark::State &State) {
  const std::string &Source = sampleKernel().Source;
  for (auto _ : State) {
    ASTContext Ctx;
    DiagEngine Diags;
    bool Ok = parseProgram(Source, Ctx, Diags);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
  State.SetLabel("parse, no sema");
}
BENCHMARK(BM_ParseOnly);

/// The clone-vs-reparse race the column fast path is built on: arg 0
/// re-runs parse + sema from source (the pre-clone per-cell cost), arg
/// 1 deep-clones a checked front end (minicl/ASTClone.h). Both produce
/// a structurally identical private AST ready for the PassManager.
static void BM_CloneVsReparse(benchmark::State &State) {
  bool Clone = State.range(0) != 0;
  const std::string &Source = sampleKernel().Source;
  ASTContext Src;
  DiagEngine Diags;
  parseProgram(Source, Src, Diags);
  checkProgram(Src, Diags);
  for (auto _ : State) {
    if (Clone) {
      std::unique_ptr<ASTContext> Copy = cloneContext(Src);
      benchmark::DoNotOptimize(&Copy->program());
    } else {
      ASTContext Ctx;
      DiagEngine D2;
      bool Ok = parseProgram(Source, Ctx, D2) && checkProgram(Ctx, D2);
      benchmark::DoNotOptimize(Ok);
    }
  }
  State.SetLabel(Clone ? "cloneContext" : "parse+sema");
}
BENCHMARK(BM_CloneVsReparse)->DenseRange(0, 1);

/// Raw allocation throughput: the AST arena's bump allocator (arg 1)
/// against individual heap allocations of the same sizes (arg 0) —
/// the reason AST node construction and O(1) context teardown got
/// cheap. 4096 allocations of 32/48/64-byte nodes per iteration.
static void BM_ArenaAllocVsHeap(benchmark::State &State) {
  bool UseArena = State.range(0) != 0;
  constexpr size_t N = 4096;
  constexpr size_t Sizes[3] = {32, 48, 64};
  if (UseArena) {
    for (auto _ : State) {
      BumpArena A;
      for (size_t I = 0; I != N; ++I) {
        void *P = A.allocate(Sizes[I % 3], alignof(std::max_align_t));
        benchmark::DoNotOptimize(P);
      }
    }
  } else {
    std::vector<void *> Ptrs(N);
    for (auto _ : State) {
      for (size_t I = 0; I != N; ++I) {
        Ptrs[I] = ::operator new(Sizes[I % 3]);
        benchmark::DoNotOptimize(Ptrs[I]);
      }
      for (size_t I = 0; I != N; ++I)
        ::operator delete(Ptrs[I]);
    }
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(N));
  State.SetLabel(UseArena ? "bump arena" : "operator new/delete");
}
BENCHMARK(BM_ArenaAllocVsHeap)->DenseRange(0, 1);

static void BM_OptimisePipeline(benchmark::State &State) {
  const std::string &Source = sampleKernel().Source;
  for (auto _ : State) {
    ASTContext Ctx;
    DiagEngine Diags;
    parseProgram(Source, Ctx, Diags);
    PassManager PM = buildPipeline(PassOptions::o2(), Ctx);
    PM.run(Ctx);
    benchmark::DoNotOptimize(&Ctx);
  }
}
BENCHMARK(BM_OptimisePipeline);

static void BM_Codegen(benchmark::State &State) {
  const std::string &Source = sampleKernel().Source;
  ASTContext Ctx;
  DiagEngine Diags;
  parseProgram(Source, Ctx, Diags);
  for (auto _ : State) {
    CodegenResult CR = compileToBytecode(Ctx, {});
    benchmark::DoNotOptimize(CR.Module.Functions.data());
  }
}
BENCHMARK(BM_Codegen);

static void BM_VmExecution(benchmark::State &State) {
  GeneratedKernel &K = sampleKernel();
  ASTContext Ctx;
  DiagEngine Diags;
  parseProgram(K.Source, Ctx, Diags);
  CodegenResult CR = compileToBytecode(Ctx, {});
  uint64_t Steps = 0;
  for (auto _ : State) {
    std::vector<Buffer> Buffers;
    for (const BufferSpec &Spec : K.Buffers) {
      Buffer B;
      B.Space = Spec.Space;
      B.Bytes = Spec.InitBytes;
      Buffers.push_back(std::move(B));
    }
    std::vector<KernelArg> Args;
    for (unsigned I = 0; I != Buffers.size(); ++I)
      Args.push_back(KernelArg::buffer(I));
    LaunchOptions LO;
    LO.Range = K.Range;
    LaunchResult LR = launchKernel(CR.Module, Buffers, Args, LO);
    Steps += LR.StepsExecuted;
    benchmark::DoNotOptimize(LR.Status);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
  State.SetLabel("items = VM instructions");
}
BENCHMARK(BM_VmExecution);

/// The same workload under each dispatch strategy: isolates what
/// token-threaded (computed-goto) dispatch buys over the portable
/// switch loop, with fusion and engine reuse held constant. arg 0 =
/// switch, 1 = goto (docs/vm.md).
static void BM_DispatchHotLoop(benchmark::State &State) {
  bool WantGoto = State.range(0) != 0;
  if (WantGoto && !vmHasGotoDispatch()) {
    State.SkipWithError("computed-goto dispatch not compiled in");
    return;
  }
  GeneratedKernel &K = sampleKernel();
  ASTContext Ctx;
  DiagEngine Diags;
  parseProgram(K.Source, Ctx, Diags);
  CodegenResult CR = compileToBytecode(Ctx, {});
  VmDispatch Saved = vmDispatchMode();
  setVmDispatchMode(WantGoto ? VmDispatch::Goto : VmDispatch::Switch);
  uint64_t Steps = 0;
  for (auto _ : State) {
    std::vector<Buffer> Buffers;
    for (const BufferSpec &Spec : K.Buffers) {
      Buffer B;
      B.Space = Spec.Space;
      B.Bytes = Spec.InitBytes;
      Buffers.push_back(std::move(B));
    }
    std::vector<KernelArg> Args;
    for (unsigned I = 0; I != Buffers.size(); ++I)
      Args.push_back(KernelArg::buffer(I));
    LaunchOptions LO;
    LO.Range = K.Range;
    LaunchResult LR = launchKernel(CR.Module, Buffers, Args, LO);
    Steps += LR.StepsExecuted;
    benchmark::DoNotOptimize(LR.Status);
  }
  setVmDispatchMode(Saved);
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
  State.SetLabel(WantGoto ? "goto" : "switch");
}
BENCHMARK(BM_DispatchHotLoop)->DenseRange(0, 1);

/// The same workload with and without superinstruction fusion: the
/// module is compiled once per variant, execution is bit-identical,
/// only dispatch count differs. arg 0 = unfused, 1 = fused.
static void BM_FusedVsUnfused(benchmark::State &State) {
  bool Fused = State.range(0) != 0;
  GeneratedKernel &K = sampleKernel();
  ASTContext Ctx;
  DiagEngine Diags;
  parseProgram(K.Source, Ctx, Diags);
  bool SavedFusion = vmFusionEnabled();
  setVmFusionEnabled(Fused);
  CodegenResult CR = compileToBytecode(Ctx, {});
  setVmFusionEnabled(SavedFusion);
  uint64_t Steps = 0;
  for (auto _ : State) {
    std::vector<Buffer> Buffers;
    for (const BufferSpec &Spec : K.Buffers) {
      Buffer B;
      B.Space = Spec.Space;
      B.Bytes = Spec.InitBytes;
      Buffers.push_back(std::move(B));
    }
    std::vector<KernelArg> Args;
    for (unsigned I = 0; I != Buffers.size(); ++I)
      Args.push_back(KernelArg::buffer(I));
    LaunchOptions LO;
    LO.Range = K.Range;
    LaunchResult LR = launchKernel(CR.Module, Buffers, Args, LO);
    Steps += LR.StepsExecuted;
    benchmark::DoNotOptimize(LR.Status);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
  State.SetLabel(Fused ? "fused" : "unfused");
}
BENCHMARK(BM_FusedVsUnfused)->DenseRange(0, 1);

/// The outcome cache's key derivation (exec/OutcomeCache.h): one
/// canonical serialization of the job descriptor plus an FNV-1a pass
/// over the bytes. This sits on the hot dispatch path of every cached
/// campaign cell, so its cost bounds how cheap a cache hit can be.
static void BM_SerializeAndHashDescriptor(benchmark::State &State) {
  TestCase T = TestCase::fromGenerated(sampleKernel());
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  ExecJob Job =
      ExecJob::onConfig(T, configById(Registry, 12), true, RunSettings());
  size_t Bytes = descriptorBytes(Job).size();
  for (auto _ : State) {
    uint64_t H = hashDescriptor(Job);
    benchmark::DoNotOptimize(H);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(Bytes));
  State.SetLabel("cache-key cost per dispatched cell");
}
BENCHMARK(BM_SerializeAndHashDescriptor);

static void BM_EndToEndDriver(benchmark::State &State) {
  TestCase T = TestCase::fromGenerated(sampleKernel());
  for (auto _ : State) {
    RunOutcome O = runTestOnReference(T, /*Optimize=*/true);
    benchmark::DoNotOptimize(O.OutputHash);
  }
}
BENCHMARK(BM_EndToEndDriver);

/// The CLsmith differential-testing workload (Table 4 inner loop)
/// through the ExecutionEngine at 1/2/4 workers. Compare the per-arg
/// wall times for the serial-vs-parallel campaign speedup; items/sec
/// counts campaign cells. UseRealTime makes the thread-count sweep
/// comparable (CPU time sums over workers).
static void BM_DifferentialCampaign(benchmark::State &State) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));

  CampaignSettings S;
  S.KernelsPerMode = 6;
  S.Exec.Threads = static_cast<unsigned>(State.range(0));
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 256;
  std::vector<GenMode> Modes = {GenMode::Barrier};

  uint64_t Cells = 0;
  for (auto _ : State) {
    std::vector<ModeTable> Tables =
        runDifferentialCampaign(Above, Modes, S);
    for (const ModeTable &T : Tables)
      Cells += uint64_t(T.NumTests) * Above.size() * 2;
    benchmark::DoNotOptimize(Tables.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Cells));
  State.SetLabel("items = campaign cells; threads = " +
                 std::to_string(State.range(0)));
}
BENCHMARK(BM_DifferentialCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
