//===- table3_emi_benchmarks.cpp - Reproduces Table 3 --------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 3 (§7.2): EMI testing over the benchmark suite.
/// For each (benchmark, configuration) the cell reports the *worst*
/// outcome over all EMI variants (substitutions on/off, optimisations
/// on/off), in the paper's decreasing severity order:
///
///   w  - some variant computed a result differing from the base
///   c  - some variant crashed (compiler or runtime)
///   to - some variant timed out
///   ng - the configuration cannot run the base benchmark at all
///   ok - all variants matched the base
///
/// Superscripts: e = only with substitutions enabled, d = only with
/// substitutions disabled, ? = either way. Altera (20, 21) is excluded
/// as in the paper (offline compilation); the racy spmv and myocyte
/// are excluded as in the paper.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Benchmarks.h"
#include "emi/Emi.h"
#include "exec/Pipeline.h"
#include "oracle/Oracle.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <map>
#include <memory>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// Worst-outcome lattice per the paper's ordering.
enum class Cell : uint8_t { Ok, Timeout, Crash, Wrong, NoGen };

struct CellState {
  Cell Worst = Cell::Ok;
  bool WithSubst = false; ///< observed with substitutions on
  bool WithoutSubst = false;

  void observe(Cell C, bool Subst) {
    if (static_cast<int>(C) > static_cast<int>(Worst)) {
      Worst = C;
      WithSubst = Subst;
      WithoutSubst = !Subst;
    } else if (C == Worst && C != Cell::Ok) {
      (Subst ? WithSubst : WithoutSubst) = true;
    }
  }

  std::string str() const {
    const char *Base;
    switch (Worst) {
    case Cell::Ok:
      return "ok";
    case Cell::NoGen:
      return "ng";
    case Cell::Timeout:
      Base = "to";
      break;
    case Cell::Crash:
      Base = "c";
      break;
    case Cell::Wrong:
      Base = "w";
      break;
    }
    const char *Sup = WithSubst && WithoutSubst ? "?"
                      : WithSubst              ? "e"
                                               : "d";
    return std::string(Base) + Sup;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned VariantsPerSide = Args.Kernels
                                 ? Args.Kernels
                                 : (Args.Full ? 125 : 6);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<Benchmark> Suite = emiBenchmarkSuite();

  std::printf("Table 3: EMI testing over the Parboil/Rodinia mini-suite "
              "(%u variants x subst on/off x opt on/off per cell)\n",
              VariantsPerSide);
  std::printf("(myocyte and spmv excluded: data races, as in the "
              "paper; configs 20/21 excluded: offline compilation)\n\n");

  std::printf("%-11s", "Benchmark");
  for (const DeviceConfig &C : Registry)
    if (C.Id <= 19)
      std::printf("%5d", C.Id);
  std::printf("\n");
  printRule(11 + 5 * 19);

  std::unique_ptr<ExecBackend> Backend = makeBackend(Args.execOptions());
  const unsigned ShardSize = Args.execOptions().resolvedShardSize();

  for (const Benchmark &B : Suite) {
    std::map<int, CellState> Row;

    // The base must run; "ng" when a configuration cannot produce the
    // expected output with an empty EMI block. The reference run and
    // every per-configuration base check (both opt levels) go out as
    // one backend batch.
    std::vector<const DeviceConfig *> Configs;
    for (const DeviceConfig &C : Registry)
      if (C.Id <= 19)
        Configs.push_back(&C);

    std::vector<ExecJob> BaseJobs;
    BaseJobs.push_back(ExecJob::onReference(B.Test, true, RunSettings()));
    for (const DeviceConfig *C : Configs)
      for (bool Opt : {false, true})
        BaseJobs.push_back(ExecJob::onConfig(B.Test, *C, Opt, RunSettings()));
    std::vector<RunOutcome> BaseOuts = Backend->run(BaseJobs);
    const RunOutcome BaseRef = BaseOuts[0];

    // Configurations whose base check succeeds take part in the
    // variant sweep; the rest are "ng" cells.
    std::vector<const DeviceConfig *> Live;
    for (size_t CI = 0; CI != Configs.size(); ++CI) {
      bool BaseOk = false;
      for (int OptI = 0; OptI != 2; ++OptI) {
        const RunOutcome &O = BaseOuts[1 + CI * 2 + OptI];
        if (O.ok() && BaseRef.ok() && O.OutputHash == BaseRef.OutputHash)
          BaseOk = true;
      }
      if (BaseOk)
        Live.push_back(Configs[CI]);
      else
        Row[Configs[CI]->Id].observe(Cell::NoGen, false);
    }

    // EMI variants are constructed once (they do not depend on the
    // configuration) and stream through the pipeline: each variant
    // expands into its (live config, opt) cells and the sink folds
    // outcomes into the worst-outcome lattice. observe() is
    // commutative, so the streaming order matches the old nested
    // loops' result exactly.
    std::vector<TestCase> Variants;
    std::vector<bool> VariantSubst;
    for (bool Subst : {false, true}) {
      for (unsigned V = 0; V != VariantsPerSide; ++V) {
        InjectOptions IO;
        IO.Seed = Args.Seed + V * 7 + Subst * 1000;
        IO.NumBlocks = 1 + V % 2;
        IO.Substitutions = Subst;
        std::vector<PruneOptions> Sweep = paperPruneSweep(IO.Seed);
        IO.Prune = Sweep[V % Sweep.size()];
        TestCase Variant;
        DiagEngine Diags;
        if (!injectEmiIntoTest(B.Test, IO, Variant, Diags))
          continue;
        Variants.push_back(std::move(Variant));
        VariantSubst.push_back(Subst);
      }
    }

    class LatticeSink final : public ResultSink {
    public:
      LatticeSink(std::map<int, CellState> &Row,
                  const std::vector<const DeviceConfig *> &Live,
                  const std::vector<bool> &VariantSubst,
                  const RunOutcome &BaseRef)
          : Row(Row), Live(Live), VariantSubst(VariantSubst),
            BaseRef(BaseRef) {}

      void consumeTest(size_t TestIndex, const TestCase &,
                       const std::vector<RunOutcome> &Outs) override {
        bool Subst = VariantSubst[TestIndex];
        size_t J = 0;
        for (const DeviceConfig *C : Live) {
          CellState &State = Row[C->Id];
          for (int OptI = 0; OptI != 2; ++OptI) {
            const RunOutcome &O = Outs[J++];
            switch (O.Status) {
            case RunStatus::Ok:
              if (BaseRef.ok() && O.OutputHash != BaseRef.OutputHash)
                State.observe(Cell::Wrong, Subst);
              break;
            case RunStatus::Crash:
            case RunStatus::BuildFailure:
              // The paper merges compiler and runtime errors into "c"
              // for this experiment (§7.2 footnote).
              State.observe(Cell::Crash, Subst);
              break;
            case RunStatus::Timeout:
              State.observe(Cell::Timeout, Subst);
              break;
            }
          }
        }
      }

      std::map<int, CellState> &Row;
      const std::vector<const DeviceConfig *> &Live;
      const std::vector<bool> &VariantSubst;
      const RunOutcome &BaseRef;
    };

    VectorSource Source(std::move(Variants));
    LatticeSink Sink(Row, Live, VariantSubst, BaseRef);
    runShardedCampaign(Source, *Backend, ShardSize,
                       [&](size_t, const TestCase &V,
                           std::vector<ExecJob> &Jobs) {
                         for (const DeviceConfig *C : Live)
                           for (bool Opt : {false, true})
                             Jobs.push_back(ExecJob::onConfig(
                                 V, *C, Opt, RunSettings()));
                       },
                       Sink);

    std::printf("%-11s", B.Name.c_str());
    for (const DeviceConfig &C : Registry)
      if (C.Id <= 19)
        std::printf("%5s", Row[C.Id].str().c_str());
    std::printf("\n");
  }
  printRule(11 + 5 * 19);
  std::printf("\nlegend: w = wrong result, c = crash/compile error, "
              "to = timeout, ng = cannot run base, ok = all variants "
              "agree; superscript e/d/? = needs substitutions "
              "enabled/disabled/either\n");
  return 0;
}
