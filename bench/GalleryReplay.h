//===- GalleryReplay.h - Shared Figure 1/2 replay harness -------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The replay runs through the streaming pipeline API: each gallery
// kernel's reference run and its per-configuration expectation runs
// are expanded into backend jobs, so `--backend=procs` replays the
// gallery with crash isolation and `--threads=N` replays it in
// parallel — with byte-identical reports either way.
//
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_BENCH_GALLERYREPLAY_H
#define CLFUZZ_BENCH_GALLERYREPLAY_H

#include "BenchUtil.h"
#include "corpus/Gallery.h"
#include "device/DeviceConfig.h"
#include "exec/Pipeline.h"
#include "support/StringUtil.h"

#include <cstdio>
#include <memory>

namespace clfuzz::bench {

/// Prints one gallery entry's replay: job 0 is the reference run, jobs
/// 1..N the expectation runs in gallery order.
class GalleryReplaySink final : public ResultSink {
public:
  explicit GalleryReplaySink(const std::vector<GalleryEntry> &Entries)
      : Entries(Entries) {}

  void consumeTest(size_t TestIndex, const TestCase &,
                   const std::vector<RunOutcome> &Outs) override {
    const GalleryEntry &E = Entries[TestIndex];
    const RunOutcome &Ref = Outs[0];
    std::printf("Figure %s: %s\n", E.Id.c_str(), E.Caption.c_str());
    if (Ref.ok() && !Ref.OutputHead.empty())
      std::printf("  reference result: %s\n",
                  toHex(Ref.OutputHead[0]).c_str());
    for (size_t I = 0; I != E.Buggy.size(); ++I) {
      const GalleryEntry::Expectation &X = E.Buggy[I];
      const RunOutcome &O = Outs[1 + I];
      ++Total;
      const char *Verdict = "NOT reproduced";
      if (X.ExpectedStatus != RunStatus::Ok) {
        if (O.Status != RunStatus::Ok) {
          Verdict = "reproduced";
          ++Reproduced;
        }
      } else if (O.Status != RunStatus::Ok) {
        Verdict = "reproduced (pre-empted by crash/ICE model)";
        ++Reproduced;
      } else if (Ref.ok() && O.OutputHash != Ref.OutputHash) {
        Verdict = "reproduced";
        ++Reproduced;
      }
      std::printf("  config %2d%c: %-3s", X.ConfigId, X.Opt ? '+' : '-',
                  runStatusName(O.Status));
      if (O.ok() && !O.OutputHead.empty())
        std::printf(" result=%s", toHex(O.OutputHead[0]).c_str());
      if (!O.ok())
        std::printf(" (%s)", O.Message.c_str());
      std::printf("  -> %s\n", Verdict);
    }
    std::printf("\n");
  }

  const std::vector<GalleryEntry> &Entries;
  unsigned Reproduced = 0, Total = 0;
};

/// Shared replay used by the fig1/fig2 harnesses.
inline int replayGallery(const std::vector<GalleryEntry> &Entries,
                         const char *Title, const HarnessArgs &Args) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::printf("%s\n\n", Title);

  std::unique_ptr<ExecBackend> Backend = makeBackend(Args.execOptions());

  std::vector<TestCase> Tests;
  Tests.reserve(Entries.size());
  for (const GalleryEntry &E : Entries)
    Tests.push_back(E.Test);
  VectorSource Source(std::move(Tests));

  GalleryReplaySink Sink(Entries);
  runShardedCampaign(
      Source, *Backend, Args.execOptions().resolvedShardSize(),
      [&](size_t TestIndex, const TestCase &T,
          std::vector<ExecJob> &Jobs) {
        Jobs.push_back(ExecJob::onReference(T, true, RunSettings()));
        for (const GalleryEntry::Expectation &X :
             Entries[TestIndex].Buggy)
          Jobs.push_back(ExecJob::onConfig(
              T, configById(Registry, X.ConfigId), X.Opt, RunSettings()));
      },
      Sink);

  printRule();
  std::printf("bug expectations reproduced: %u / %u\n", Sink.Reproduced,
              Sink.Total);
  return Sink.Reproduced == Sink.Total ? 0 : 1;
}

} // namespace clfuzz::bench

#endif // CLFUZZ_BENCH_GALLERYREPLAY_H
