//===- GalleryReplay.h - Shared Figure 1/2 replay harness -------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_BENCH_GALLERYREPLAY_H
#define CLFUZZ_BENCH_GALLERYREPLAY_H

#include "BenchUtil.h"
#include "corpus/Gallery.h"
#include "device/DeviceConfig.h"
#include "support/StringUtil.h"

#include <cstdio>

namespace clfuzz::bench {

/// Shared replay used by the fig1/fig2 harnesses.
inline int replayGallery(const std::vector<GalleryEntry> &Entries,
                         const char *Title) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::printf("%s\n\n", Title);
  unsigned Reproduced = 0, Total = 0;
  for (const GalleryEntry &E : Entries) {
    RunOutcome Ref = runTestOnReference(E.Test, true);
    std::printf("Figure %s: %s\n", E.Id.c_str(), E.Caption.c_str());
    if (Ref.ok() && !Ref.OutputHead.empty())
      std::printf("  reference result: %s\n",
                  toHex(Ref.OutputHead[0]).c_str());
    for (const GalleryEntry::Expectation &X : E.Buggy) {
      ++Total;
      const DeviceConfig &C = configById(Registry, X.ConfigId);
      RunOutcome O = runTestOnConfig(E.Test, C, X.Opt);
      const char *Verdict = "NOT reproduced";
      if (X.ExpectedStatus != RunStatus::Ok) {
        if (O.Status != RunStatus::Ok) {
          Verdict = "reproduced";
          ++Reproduced;
        }
      } else if (O.Status != RunStatus::Ok) {
        Verdict = "reproduced (pre-empted by crash/ICE model)";
        ++Reproduced;
      } else if (Ref.ok() && O.OutputHash != Ref.OutputHash) {
        Verdict = "reproduced";
        ++Reproduced;
      }
      std::printf("  config %2d%c: %-3s", X.ConfigId, X.Opt ? '+' : '-',
                  runStatusName(O.Status));
      if (O.ok() && !O.OutputHead.empty())
        std::printf(" result=%s", toHex(O.OutputHead[0]).c_str());
      if (!O.ok())
        std::printf(" (%s)", O.Message.c_str());
      std::printf("  -> %s\n", Verdict);
    }
    std::printf("\n");
  }
  printRule();
  std::printf("bug expectations reproduced: %u / %u\n", Reproduced,
              Total);
  return Reproduced == Total ? 0 : 1;
}

} // namespace clfuzz::bench

#endif // CLFUZZ_BENCH_GALLERYREPLAY_H
