//===- compile_throughput.cpp - Uncached compile-pipeline throughput -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures **uncached cells/sec on a compile-bound differential
/// campaign** — the number the parse-once/clone-per-cell front end
/// (docs/compile-pipeline.md) exists to move. The workload is the same
/// column shape as vm_throughput.cpp (N kernels × the paper's
/// above-threshold configuration columns, a reference run plus an
/// optimised configuration run per column), executed with no outcome
/// cache through `runColumns(groupIntoColumns(...))`, but generated
/// compile-heavy: larger structure-size knobs and small launch
/// geometries, so the front end — not the VM — is the dominant cost,
/// as it is for the short-running kernels real campaigns burn most of
/// their wall-clock compiling.
///
/// Phases: {clone on, clone off} × {serial inline, thread pool}. Every
/// phase is checked outcome-identical to the first (the toggle must
/// change wall-clock only — the PR's hard invariant), and per-phase
/// compile counter deltas (parses, semas, clones, per-phase ns) are
/// reported.
///
/// Emits machine-readable `BENCH_compile.json`, including the frozen
/// clone-off baseline measured at this PR's commit on this same
/// workload — the committed copy lives at bench/BENCH_compile.json and
/// the CI `compile` job holds the clone-on serial number to >= 1.5x
/// the committed clone-off baseline.
///
///   --kernels=N   kernels in the campaign (default 8)
///   --threads=N   workers for the thread-pool phases (default 4)
///   --seed=N      campaign seed base (default 100000)
///   --json=PATH   where to write BENCH_compile.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/CompileCounters.h"
#include "device/DeviceConfig.h"
#include "gen/Generator.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// The clone-off numbers for this exact workload (8 kernels, seed
/// 100000, 240 cells), measured on the PR's reference host and kept in
/// the JSON so trend tooling and the CI acceptance check (clone-on
/// serial >= 1.5x the clone-off serial baseline) need no second
/// measurement.
constexpr double BaselineOffSerialCps = 920.0;
constexpr double BaselineOffThreadsCps = 975.0;

struct Phase {
  std::string Clone; ///< "on" | "off"
  std::string Sched; ///< "serial" | "threads"
  double Seconds = 0.0;
  double CellsPerSec = 0.0;
  CompileCounters Delta; ///< this process's compile counter movement
};

CompileCounters counterDelta(const CompileCounters &After,
                             const CompileCounters &Before) {
  CompileCounters D;
  D.Parses = After.Parses - Before.Parses;
  D.ParseNs = After.ParseNs - Before.ParseNs;
  D.Semas = After.Semas - Before.Semas;
  D.SemaNs = After.SemaNs - Before.SemaNs;
  D.Clones = After.Clones - Before.Clones;
  D.CloneNs = After.CloneNs - Before.CloneNs;
  D.Opts = After.Opts - Before.Opts;
  D.OptNs = After.OptNs - Before.OptNs;
  D.Codegens = After.Codegens - Before.Codegens;
  D.CodegenNs = After.CodegenNs - Before.CodegenNs;
  D.Execs = After.Execs - Before.Execs;
  D.ExecNs = After.ExecNs - Before.ExecNs;
  return D;
}

bool sameOutcomes(const std::vector<RunOutcome> &A,
                  const std::vector<RunOutcome> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Status != B[I].Status || A[I].OutputHash != B[I].OutputHash ||
        A[I].Message != B[I].Message || A[I].Steps != B[I].Steps ||
        A[I].OutputHead != B[I].OutputHead)
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_compile.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args = parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned Kernels = Args.Kernels ? Args.Kernels : 8;
  unsigned Threads = Args.Threads > 1 ? Args.Threads : 4;

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Columns;
  for (int Id : paperAboveThresholdIds())
    Columns.push_back(configById(Registry, Id));

  // Compile-heavy kernels: more helper functions, deeper blocks and
  // expressions than the campaign default, launched over a handful of
  // work-items with short loops. Per cell, the front end then costs
  // more than the launch — the regime this bench exists to measure.
  std::vector<TestCase> Tests;
  for (unsigned K = 0; K != Kernels; ++K) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Args.Seed + K;
    GO.MinThreads = 2;
    GO.MaxThreads = 8;
    GO.MaxGroupSize = 4;
    GO.NumFunctions = 24;
    GO.MaxBlockStmts = 10;
    GO.MaxBlockDepth = 5;
    GO.MaxExprDepth = 5;
    GO.MaxLoopIterations = 1;
    Tests.push_back(TestCase::fromGenerated(generateKernel(GO)));
  }
  // Full Table-1 column shape: the shared reference run plus the
  // configuration at both opt levels (real differential campaigns
  // compare both). Unoptimised cells whose bug model schedules an
  // AST-mutating pass re-parse under clone-off but run only that cheap
  // pass — exactly the cells the clone exists for.
  std::vector<ExecJob> Jobs;
  for (const TestCase &T : Tests)
    for (const DeviceConfig &C : Columns) {
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/false, RunSettings()));
      Jobs.push_back(ExecJob::onConfig(T, C, /*Opt=*/false, RunSettings()));
      Jobs.push_back(ExecJob::onConfig(T, C, /*Opt=*/true, RunSettings()));
    }

  std::printf("compile throughput: %u kernels x %zu columns = %zu cells, "
              "uncached, threads phase = %u workers\n\n",
              Kernels, Columns.size(), Jobs.size(), Threads);
  std::printf("%-6s %-8s %10s %14s %8s %8s %8s %12s  %s\n", "clone",
              "sched", "seconds", "cells/sec", "parses", "clones",
              "opts", "parse_ms", "result");
  printRule();

  bool SavedClone = compileCloneEnabled();
  std::vector<RunOutcome> First;
  std::vector<Phase> Phases;
  bool AllIdentical = true;

  for (bool CloneOn : {true, false}) {
    setCompileCloneEnabled(CloneOn);
    for (bool Parallel : {false, true}) {
      ExecOptions E = ExecOptions::withThreads(Parallel ? Threads : 1);
      E.Backend = Parallel ? BackendKind::Threads : BackendKind::Inline;
      E.Cache = nullptr; // uncached by definition
      std::unique_ptr<ExecBackend> Backend = makeBackend(E);

      CompileCounters Before = compileCounters();
      auto Start = std::chrono::steady_clock::now();
      std::vector<RunOutcome> Outs =
          Backend->runColumns(groupIntoColumns(Jobs));
      std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;

      Phase P;
      P.Clone = CloneOn ? "on" : "off";
      P.Sched = Parallel ? "threads" : "serial";
      P.Seconds = Elapsed.count();
      P.CellsPerSec = static_cast<double>(Jobs.size()) / P.Seconds;
      P.Delta = counterDelta(compileCounters(), Before);

      if (First.empty())
        First = std::move(Outs);
      else if (!sameOutcomes(First, Outs))
        AllIdentical = false;

      std::printf(
          "%-6s %-8s %10.3f %14.1f %8llu %8llu %8llu %12.2f  %s\n",
          P.Clone.c_str(), P.Sched.c_str(), P.Seconds, P.CellsPerSec,
          static_cast<unsigned long long>(P.Delta.Parses),
          static_cast<unsigned long long>(P.Delta.Clones),
          static_cast<unsigned long long>(P.Delta.Opts),
          static_cast<double>(P.Delta.ParseNs + P.Delta.SemaNs) / 1e6,
          Phases.empty() ? "baseline for identity"
                         : (AllIdentical ? "identical" : "MISMATCH"));
      Phases.push_back(std::move(P));
    }
  }
  setCompileCloneEnabled(SavedClone);

  // Best clone-on numbers per scheduler drive the headline speedups.
  double OnSerial = 0.0, OnThreads = 0.0, OffSerial = 0.0, OffThreads = 0.0;
  for (const Phase &P : Phases) {
    double &Slot = P.Clone == "on"
                       ? (P.Sched == "serial" ? OnSerial : OnThreads)
                       : (P.Sched == "serial" ? OffSerial : OffThreads);
    Slot = std::max(Slot, P.CellsPerSec);
  }
  double SerialSpeedup = OnSerial / BaselineOffSerialCps;
  double ThreadsSpeedup = OnThreads / BaselineOffThreadsCps;
  std::printf("\nclone-on vs committed clone-off baseline: serial %.1f -> "
              "%.1f cells/sec (%.2fx), threads %.1f -> %.1f (%.2fx)  "
              "(acceptance target: >= 1.5x serial)\n",
              BaselineOffSerialCps, OnSerial, SerialSpeedup,
              BaselineOffThreadsCps, OnThreads, ThreadsSpeedup);
  std::printf("this run, clone-on vs clone-off: serial %.2fx, "
              "threads %.2fx\n",
              OffSerial > 0 ? OnSerial / OffSerial : 0.0,
              OffThreads > 0 ? OnThreads / OffThreads : 0.0);

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"compile_throughput\",\"kernels\":%u,"
               "\"columns\":%zu,\"cells\":%zu,\"threads\":%u,"
               "\"baseline\":{\"off_serial_cells_per_sec\":%.1f,"
               "\"off_threads_cells_per_sec\":%.1f},\"phases\":[",
               Kernels, Columns.size(), Jobs.size(), Threads,
               BaselineOffSerialCps, BaselineOffThreadsCps);
  for (size_t I = 0; I != Phases.size(); ++I) {
    const Phase &P = Phases[I];
    std::fprintf(
        J,
        "%s{\"clone\":\"%s\",\"sched\":\"%s\",\"seconds\":%.6f,"
        "\"cells_per_sec\":%.1f,\"parses\":%llu,\"parse_ns\":%llu,"
        "\"semas\":%llu,\"sema_ns\":%llu,\"clones\":%llu,"
        "\"clone_ns\":%llu,\"opts\":%llu,\"opt_ns\":%llu,"
        "\"codegens\":%llu,\"codegen_ns\":%llu,\"execs\":%llu,"
        "\"exec_ns\":%llu}",
        I ? "," : "", P.Clone.c_str(), P.Sched.c_str(), P.Seconds,
        P.CellsPerSec, static_cast<unsigned long long>(P.Delta.Parses),
        static_cast<unsigned long long>(P.Delta.ParseNs),
        static_cast<unsigned long long>(P.Delta.Semas),
        static_cast<unsigned long long>(P.Delta.SemaNs),
        static_cast<unsigned long long>(P.Delta.Clones),
        static_cast<unsigned long long>(P.Delta.CloneNs),
        static_cast<unsigned long long>(P.Delta.Opts),
        static_cast<unsigned long long>(P.Delta.OptNs),
        static_cast<unsigned long long>(P.Delta.Codegens),
        static_cast<unsigned long long>(P.Delta.CodegenNs),
        static_cast<unsigned long long>(P.Delta.Execs),
        static_cast<unsigned long long>(P.Delta.ExecNs));
  }
  std::fprintf(J,
               "],\"serial_speedup_vs_baseline\":%.2f,"
               "\"threads_speedup_vs_baseline\":%.2f,"
               "\"identical\":%s}\n",
               SerialSpeedup, ThreadsSpeedup,
               AllIdentical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  return AllIdentical ? 0 : 1;
}
