//===- fig2_bug_gallery.cpp - Reproduces Figure 2 ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Replays the Figure 1 kernels (compiler bugs of the configurations
/// below the reliability threshold) against the simulated zoo and
/// prints expected-vs-observed per configuration.
///
//===----------------------------------------------------------------------===//

#include "GalleryReplay.h"

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  return replayGallery(
      buildFigure2Gallery(),
      "Figure 2: compiler bugs of the above-threshold configurations",
      parseArgs(Argc, Argv));
}
