//===- table4_clsmith.cpp - Reproduces Table 4 ---------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 4 (§7.3): intensive CLsmith-based differential
/// testing. For every generator mode, a batch of kernels (10,000 at
/// paper scale) runs on every above-threshold configuration at both
/// optimisation levels; per cell the harness prints w / bf / c / to /
/// ok and the wrong-code percentage w%. Tests are pre-filtered to
/// build and terminate on configuration 1+, as in the paper (which is
/// why NVIDIA's bf column is artificially zero at +O).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oracle/Campaign.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned PerMode =
      Args.Kernels ? Args.Kernels : (Args.Full ? 10000 : 14);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));

  CampaignSettings S;
  S.KernelsPerMode = PerMode;
  S.SeedBase = Args.Seed;
  S.Exec = Args.execOptions();
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 256;

  static const GenMode Modes[] = {
      GenMode::Basic,          GenMode::Vector,
      GenMode::Barrier,        GenMode::AtomicSection,
      GenMode::AtomicReduction, GenMode::All};

  if (Args.Format == TableFormat::Text)
    std::printf("Table 4: CLsmith batches over the above-threshold "
                "configurations (%u kernels per mode; '-'/'+' = "
                "optimisations off/on)\n\n",
                PerMode);

  std::vector<ModeTable> Tables = runDifferentialCampaign(
      Above, std::vector<GenMode>(std::begin(Modes), std::end(Modes)),
      S);

  if (Args.Format != TableFormat::Text) {
    EmitTable T;
    T.Title = "Table 4: CLsmith differential testing";
    T.Columns = {"mode", "tests", "config", "opt", "w",
                 "bf",   "c",     "to",     "ok",  "w_pct"};
    char Pct[32];
    for (const ModeTable &Table : Tables) {
      for (const auto &[Key, Counts] : Table.Cells) {
        std::snprintf(Pct, sizeof(Pct), "%.1f", Counts.wrongPct());
        T.addRow({genModeName(Table.Mode), std::to_string(Table.NumTests),
                  std::to_string(Key.ConfigId), Key.Opt ? "+" : "-",
                  std::to_string(Counts.W), std::to_string(Counts.BF),
                  std::to_string(Counts.C), std::to_string(Counts.TO),
                  std::to_string(Counts.Pass), Pct});
      }
    }
    emitTable(T, Args.Format, stdout);
    return 0;
  }

  for (const ModeTable &Table : Tables) {
    std::printf("%s (%u tests)\n", genModeName(Table.Mode),
                Table.NumTests);
    std::printf("%6s", "");
    for (const DeviceConfig &C : Above)
      for (bool Opt : {false, true})
        std::printf("%7d%c", C.Id, Opt ? '+' : '-');
    std::printf("\n");

    auto Row = [&](const char *Label,
                   unsigned OutcomeCounts::*Member) {
      std::printf("%6s", Label);
      for (const DeviceConfig &C : Above)
        for (bool Opt : {false, true}) {
          auto It = Table.Cells.find(ConfigKey{C.Id, Opt});
          unsigned V =
              It == Table.Cells.end() ? 0 : It->second.*Member;
          std::printf("%8u", V);
        }
      std::printf("\n");
    };
    Row("w", &OutcomeCounts::W);
    Row("bf", &OutcomeCounts::BF);
    Row("c", &OutcomeCounts::C);
    Row("to", &OutcomeCounts::TO);
    Row("ok", &OutcomeCounts::Pass);
    std::printf("%6s", "w%");
    for (const DeviceConfig &C : Above)
      for (bool Opt : {false, true}) {
        auto It = Table.Cells.find(ConfigKey{C.Id, Opt});
        double Pct = It == Table.Cells.end() ? 0.0
                                             : It->second.wrongPct();
        std::printf("%7.1f%%", Pct);
      }
    std::printf("\n\n");
  }

  std::printf("expected shape (paper): Oclgrind (19) w%% far above "
              "everyone; config 9 elevated at both levels; 12-/13- "
              "spike in BARRIER/ATOMIC RED./ALL; 14-/15- crash-heavy "
              "in barrier modes; 15 bf-heavy at both levels; NVIDIA "
              "(1-4) low w%% with optimisations.\n");
  return 0;
}
