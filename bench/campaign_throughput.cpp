//===- campaign_throughput.cpp - Serial vs parallel campaign speedup -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures ExecutionEngine scaling on the CLsmith differential-testing
/// workload (the Table 4 inner loop): one batch of kernels over the
/// above-threshold configurations at both opt levels, executed at
/// several worker counts. For every thread count the harness verifies
/// that the resulting table is bit-identical to the serial run (the
/// engine's determinism contract) and reports cells/second plus the
/// speedup over serial.
///
///   --kernels=N   kernels per run (default 12)
///   --seed=N      campaign seed base
///   --threads=N   highest worker count to sweep (default 4)
///   --backend=B   backend to sweep (threads by default; procs
///                 measures the fork/pipe overhead of isolation)
///   --shard-size=N  streaming shard bound during the sweep
///
/// Every run is checked bit-identical to the serial (1-worker inline)
/// baseline — the pipeline's determinism contract.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oracle/Campaign.h"
#include "support/Hash.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// Fingerprints a campaign result so cross-thread-count runs can be
/// compared for bit-identity.
uint64_t fingerprint(const std::vector<ModeTable> &Tables) {
  Fnv64 H;
  for (const ModeTable &T : Tables) {
    H.addU64(static_cast<uint64_t>(T.Mode));
    H.addU64(T.NumTests);
    for (const auto &[Key, Counts] : T.Cells) {
      H.addU64(static_cast<uint64_t>(Key.ConfigId));
      H.addU64(Key.Opt);
      H.addU64(Counts.W);
      H.addU64(Counts.BF);
      H.addU64(Counts.C);
      H.addU64(Counts.TO);
      H.addU64(Counts.Pass);
    }
  }
  return H.value();
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned Kernels = Args.Kernels ? Args.Kernels : 12;
  unsigned MaxThreads = Args.Threads > 1 ? Args.Threads : 4;

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));

  CampaignSettings S;
  S.KernelsPerMode = Kernels;
  S.SeedBase = Args.Seed;
  S.Exec = Args.execOptions();
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 256;
  std::vector<GenMode> Modes = {GenMode::Barrier, GenMode::All};

  unsigned Cells =
      Kernels * static_cast<unsigned>(Modes.size() * Above.size()) * 2;
  std::printf("campaign throughput: %u kernels x 2 modes over %zu "
              "configurations x {-, +} (%u cells per run) on the %s "
              "backend\n",
              Kernels, Above.size(), Cells,
              backendKindName(S.Exec.Backend));
  std::printf("hardware threads available: %u\n\n",
              ExecOptions::withThreads(0).resolvedThreads());

  std::vector<unsigned> Sweep = {1};
  for (unsigned T = 2; T <= MaxThreads; T *= 2)
    Sweep.push_back(T);
  if (Sweep.back() != MaxThreads)
    Sweep.push_back(MaxThreads);

  std::printf("%-9s %12s %14s %10s  %s\n", "threads", "seconds",
              "cells/sec", "speedup", "result");
  printRule();

  double SerialSecs = 0.0;
  uint64_t SerialPrint = 0;
  for (unsigned T : Sweep) {
    S.Exec.Threads = T;
    auto Start = std::chrono::steady_clock::now();
    std::vector<ModeTable> Tables =
        runDifferentialCampaign(Above, Modes, S);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;

    uint64_t Print = fingerprint(Tables);
    if (T == 1) {
      SerialSecs = Elapsed.count();
      SerialPrint = Print;
    }
    bool Identical = Print == SerialPrint;
    std::printf("%-9u %12.3f %14.1f %9.2fx  %s\n", T, Elapsed.count(),
                Cells / Elapsed.count(),
                SerialSecs / Elapsed.count(),
                Identical ? "identical to serial"
                          : "MISMATCH vs serial");
    if (!Identical)
      return 1;
  }

  std::printf("\n(speedup tracks physical core count; on a 1-core "
              "host all rows time alike by construction)\n");
  return 0;
}
