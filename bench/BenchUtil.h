//===- BenchUtil.h - Shared helpers for the table harnesses -----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared utilities for the bench binaries that regenerate the
/// paper's tables. Every harness accepts:
///
///   --full        paper-scale test counts (slow)
///   --kernels=N   explicit override of the per-mode test count
///   --seed=N      campaign seed base
///   --threads=N   execution workers (1 = serial, 0 = all cores)
///   --backend=B   inline | threads | procs (crash-isolated workers)
///                 | remote (a `clfuzz worker` fleet over TCP)
///   --workers=host:port,...  the remote fleet (--backend=remote)
///   --shard-size=N  kernels held alive per shard (streaming bound)
///   --format=F    text | csv | json table output
///   --cache=M     off | mem | disk content-addressed outcome cache
///   --cache-dir=D disk store root (implies --cache=disk)
///   --cache-mem-mb=N  in-memory cache budget
///   --triage-witnesses=N  witnesses the triage harness bisects
///   --triage-opt  triage at the optimising level (default -O0)
///
/// Tables are bit-identical for every backend, worker count, shard
/// size and cache mode; only wall-clock time and fault isolation
/// change.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_BENCH_BENCHUTIL_H
#define CLFUZZ_BENCH_BENCHUTIL_H

#include "exec/ExecutionEngine.h"
#include "exec/OutcomeCache.h"
#include "exec/RemoteBackend.h"
#include "exec/ResultSink.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

namespace clfuzz::bench {

struct HarnessArgs {
  bool Full = false;
  unsigned Kernels = 0; ///< 0 = harness default
  uint64_t Seed = 100000;
  /// Worker count (campaign tables are identical for any value; this
  /// only changes wall-clock time).
  unsigned Threads = 1;
  /// Which ExecBackend runs the campaign cells.
  BackendKind Backend = BackendKind::Threads;
  /// Streaming shard bound (0 = ExecOptions default).
  unsigned ShardSize = 0;
  /// Output rendering; Text keeps each harness's native layout.
  TableFormat Format = TableFormat::Text;
  /// Remote fleet endpoints ("host:port" each; --backend=remote).
  std::vector<std::string> Workers;
  /// Content-addressed outcome cache (--cache / --cache-dir /
  /// --cache-mem-mb); tables are byte-identical with or without it.
  CacheMode Cache = CacheMode::Off;
  std::string CacheDir;
  unsigned CacheMemMb = 0;
  /// Witness count for the triage harness (0 = harness default).
  unsigned TriageWitnesses = 0;
  /// Triage probes run at the optimising level instead of -O0.
  bool TriageOpt = false;

  /// The ExecOptions a campaign settings struct should use.
  ExecOptions execOptions() const {
    ExecOptions E = ExecOptions::withThreads(Threads);
    E.Backend = Backend;
    if (ShardSize)
      E.ShardSize = ShardSize;
    E.RemoteWorkers = Workers;
    if (Backend == BackendKind::Remote && Workers.empty()) {
      std::fprintf(stderr,
                   "--backend=remote needs --workers=host:port,...\n");
      std::exit(2);
    }
    if (Cache != CacheMode::Off) {
      OutcomeCacheOptions CO;
      CO.Mode = Cache;
      CO.Dir = CacheDir;
      if (CacheMemMb)
        CO.MemBudgetBytes = static_cast<size_t>(CacheMemMb) << 20;
      CO.KeySalt = cacheKeySalt(E);
      try {
        E.Cache = makeOutcomeCache(CO);
      } catch (const std::exception &Ex) {
        std::fprintf(stderr, "%s\n", Ex.what());
        std::exit(2);
      }
    }
    return E;
  }
};

inline HarnessArgs parseArgs(int Argc, char **Argv) {
  HarnessArgs A;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--full") == 0)
      A.Full = true;
    else if (std::strncmp(Argv[I], "--kernels=", 10) == 0)
      A.Kernels = static_cast<unsigned>(std::atoi(Argv[I] + 10));
    else if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      A.Seed = static_cast<uint64_t>(std::atoll(Argv[I] + 7));
    else if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      A.Threads = static_cast<unsigned>(std::atoi(Argv[I] + 10));
    else if (std::strncmp(Argv[I], "--shard-size=", 13) == 0)
      A.ShardSize = static_cast<unsigned>(std::atoi(Argv[I] + 13));
    else if (std::strncmp(Argv[I], "--backend=", 10) == 0) {
      if (!parseBackendKind(Argv[I] + 10, A.Backend)) {
        std::fprintf(
            stderr,
            "unknown backend '%s' (inline, threads, procs, remote)\n",
            Argv[I] + 10);
        std::exit(2);
      }
    } else if (std::strncmp(Argv[I], "--workers=", 10) == 0) {
      A.Workers = splitWorkerList(Argv[I] + 10);
    } else if (std::strncmp(Argv[I], "--cache=", 8) == 0) {
      if (!parseCacheMode(Argv[I] + 8, A.Cache)) {
        std::fprintf(stderr, "unknown cache mode '%s' (off, mem, disk)\n",
                     Argv[I] + 8);
        std::exit(2);
      }
    } else if (std::strncmp(Argv[I], "--cache-dir=", 12) == 0) {
      A.CacheDir = Argv[I] + 12;
      if (A.Cache == CacheMode::Off)
        A.Cache = CacheMode::Disk;
    } else if (std::strncmp(Argv[I], "--cache-mem-mb=", 15) == 0) {
      A.CacheMemMb = static_cast<unsigned>(std::atoi(Argv[I] + 15));
    } else if (std::strncmp(Argv[I], "--triage-witnesses=", 19) == 0) {
      A.TriageWitnesses = static_cast<unsigned>(std::atoi(Argv[I] + 19));
    } else if (std::strcmp(Argv[I], "--triage-opt") == 0) {
      A.TriageOpt = true;
    } else if (std::strncmp(Argv[I], "--format=", 9) == 0) {
      if (!parseTableFormat(Argv[I] + 9, A.Format)) {
        std::fprintf(stderr, "unknown format '%s' (text, csv, json)\n",
                     Argv[I] + 9);
        std::exit(2);
      }
    } else
      std::fprintf(stderr, "warning: unknown argument '%s'\n", Argv[I]);
  }
  return A;
}

inline void printRule(unsigned Width = 78) {
  for (unsigned I = 0; I != Width; ++I)
    std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

} // namespace clfuzz::bench

#endif // CLFUZZ_BENCH_BENCHUTIL_H
