//===- table5_clsmith_emi.cpp - Reproduces Table 5 -----------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 5 (§7.4): CLsmith+EMI testing. Base kernels are
/// generated in ALL mode with 1-5 dead-by-construction blocks; bases
/// whose result does not change when the dead array is inverted are
/// discarded (their blocks landed in already-dead code). Each base
/// yields 40 prune variants (p in {0,.3,.6,1}^3 with p_c+p_l <= 1);
/// per configuration the harness reports base fails / w / bf / c / to
/// / stable, voting only *within* a configuration (EMI needs no
/// cross-configuration comparison, §7.4).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oracle/Campaign.h"

#include <cstdio>

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned Bases = Args.Kernels ? Args.Kernels : (Args.Full ? 180 : 5);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));

  EmiCampaignSettings S;
  S.NumBases = Bases;
  S.Base.SeedBase = Args.Seed;
  S.Base.Exec = Args.execOptions();
  S.Base.BaseGen.MinThreads = 48;
  S.Base.BaseGen.MaxThreads = 192;

  if (Args.Format == TableFormat::Text)
    std::printf("Table 5: CLsmith+EMI results (%u base programs, 40 "
                "prune variants each)\n\n",
                Bases);

  unsigned Usable = 0;
  std::vector<EmiCampaignColumn> Columns =
      runEmiCampaign(Above, S, Usable);

  if (Args.Format != TableFormat::Text) {
    EmitTable T;
    T.Title = "Table 5: CLsmith+EMI testing (usable bases: " +
              std::to_string(Usable) + ")";
    T.Columns = {"config", "opt", "base_fails", "w",
                 "bf",     "c",   "to",         "stable"};
    for (const EmiCampaignColumn &Col : Columns)
      T.addRow({std::to_string(Col.Key.ConfigId), Col.Key.Opt ? "+" : "-",
                std::to_string(Col.BaseFails), std::to_string(Col.Wrong),
                std::to_string(Col.InducedBF),
                std::to_string(Col.InducedCrash),
                std::to_string(Col.InducedTimeout),
                std::to_string(Col.Stable)});
    emitTable(T, Args.Format, stdout);
    return 0;
  }

  std::printf("usable bases: %u\n\n", Usable);
  std::printf("%-11s", "");
  for (const DeviceConfig &C : Above)
    for (bool Opt : {false, true})
      std::printf("%6d%c", C.Id, Opt ? '+' : '-');
  std::printf("\n");

  auto Row = [&](const char *Label,
                 unsigned EmiCampaignColumn::*Member) {
    std::printf("%-11s", Label);
    for (const DeviceConfig &C : Above)
      for (bool Opt : {false, true}) {
        for (const EmiCampaignColumn &Col : Columns)
          if (Col.Key.ConfigId == C.Id && Col.Key.Opt == Opt)
            std::printf("%7u", Col.*Member);
      }
    std::printf("\n");
  };
  Row("base fails", &EmiCampaignColumn::BaseFails);
  Row("w", &EmiCampaignColumn::Wrong);
  Row("bf", &EmiCampaignColumn::InducedBF);
  Row("c", &EmiCampaignColumn::InducedCrash);
  Row("to", &EmiCampaignColumn::InducedTimeout);
  Row("stable", &EmiCampaignColumn::Stable);

  std::printf("\nexpected shape (paper): EMI exposes wrong-code on "
              "NVIDIA (1-4) and Intel CPUs (12/13) despite their low "
              "Table 4 rates; Oclgrind (19) shows zero w (its bugs are "
              "not optimisation-sensitive); 14-/15- are dominated by "
              "base fails.\n");
  return 0;
}
