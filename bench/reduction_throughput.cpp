//===- reduction_throughput.cpp - Serial vs pipelined reduction speed ----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures the reduction pipeline on the Figure 2(f) comma-bug
/// witness padded with noise: the same reduction runs serial
/// (inline, no pipelining), pipelined (candidate printing overlapped
/// with evaluation), and speculative (thread/process backends at
/// several worker counts), reporting rounds/sec and candidates/sec.
/// Every row is checked bit-identical to the serial baseline - the
/// reducer's determinism contract; the sweep changes wall-clock time
/// only.
///
///   --kernels=N   pad the witness with N extra noise statements
///                 (default 24; more noise = longer reduction)
///   --threads=N   highest worker count to sweep (default 4)
///   --backend=B   extra backend to sweep at --threads workers
///                 (procs measures fork/pipe isolation overhead)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "oracle/Reducer.h"
#include "support/StringUtil.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// The ReducerTest comma bug, padded with a configurable amount of
/// deletable noise so the reduction has real work to do.
TestCase paddedWitness(unsigned NoiseStmts) {
  std::string Body;
  Body += "int helper(int v) { return v * 3 + 1; }\n"
          "kernel void k(global ulong *out) {\n"
          "  int noise1 = helper(11);\n";
  for (unsigned I = 0; I != NoiseStmts; ++I) {
    Body += "  int pad" + std::to_string(I) + " = " +
            std::to_string(I + 1) + ";\n";
    Body += "  for (int i" + std::to_string(I) + " = 0; i" +
            std::to_string(I) + " < 3; i" + std::to_string(I) +
            "++) pad" + std::to_string(I) + " += noise1;\n";
  }
  Body += "  short x = 1; uint y;\n"
          "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
          "  out[get_global_id(0)] = y;\n"
          "}\n";

  TestCase T;
  T.Name = "padded comma bug";
  T.Source = std::move(Body);
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

struct Row {
  std::string Name;
  ExecOptions Exec;
  bool Pipeline;
};

} // namespace

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned Noise = Args.Kernels ? Args.Kernels : 24;
  unsigned MaxThreads = Args.Threads > 1 ? Args.Threads : 4;

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19),
                                     /*Opt=*/false);
  TestCase Witness = paddedWitness(Noise);

  std::vector<Row> Sweep;
  Sweep.push_back({"inline serial",
                   ExecOptions::withBackend(BackendKind::Inline), false});
  Sweep.push_back({"inline pipelined",
                   ExecOptions::withBackend(BackendKind::Inline), true});
  for (unsigned T = 2; T <= MaxThreads; T *= 2)
    Sweep.push_back({"threads " + std::to_string(T),
                     ExecOptions::withBackend(BackendKind::Threads, T),
                     true});
  if (Args.Backend != BackendKind::Threads &&
      Args.Backend != BackendKind::Inline)
    Sweep.push_back({std::string(backendKindName(Args.Backend)) + " " +
                         std::to_string(MaxThreads),
                     ExecOptions::withBackend(Args.Backend, MaxThreads),
                     true});

  std::printf("reduction throughput: comma-bug witness + %u noise "
              "statements (%u code lines)\n\n",
              Noise, countCodeLines(Witness.Source));
  std::printf("%-18s %10s %10s %12s %14s %10s  %s\n", "mode", "rounds",
              "tried", "seconds", "cands/sec", "speedup", "result");
  printRule();

  double SerialSecs = 0.0;
  std::string SerialSource;
  ReduceStats SerialStats;
  for (size_t I = 0; I != Sweep.size(); ++I) {
    ReducerOptions Opts;
    Opts.MaxCandidates = 4000;
    Opts.Exec = Sweep[I].Exec;
    Opts.Pipeline = Sweep[I].Pipeline;

    ReduceStats Stats;
    auto Start = std::chrono::steady_clock::now();
    TestCase Reduced = reduceTest(Witness, Oracle, Opts, &Stats);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;

    if (I == 0) {
      SerialSecs = Elapsed.count();
      SerialSource = Reduced.Source;
      SerialStats = Stats;
    }
    bool Identical = Reduced.Source == SerialSource &&
                     Stats.CandidatesTried == SerialStats.CandidatesTried &&
                     Stats.CandidatesKept == SerialStats.CandidatesKept &&
                     Stats.Rounds == SerialStats.Rounds;
    std::printf("%-18s %10u %10u %12.3f %14.1f %9.2fx  %s\n",
                Sweep[I].Name.c_str(), Stats.Rounds,
                Stats.CandidatesTried, Elapsed.count(),
                Stats.CandidatesTried / Elapsed.count(),
                SerialSecs / Elapsed.count(),
                Identical ? "identical to serial"
                          : "MISMATCH vs serial");
    if (!Identical)
      return 1;
  }

  std::printf("\nreduction: %u -> %u lines over %u rounds (%u kept, "
              "%u skipped, %u escalations)\n",
              SerialStats.InitialLines, SerialStats.FinalLines,
              SerialStats.Rounds, SerialStats.CandidatesKept,
              SerialStats.CandidatesSkipped, SerialStats.Escalations);
  std::printf("(speedup tracks physical core count; on a 1-core host "
              "pipelining is the only win by construction)\n");
  return 0;
}
