//===- scheduler_throughput.cpp - Campaign-scheduler overhead ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures what multiplexing costs: the same three campaigns (diff,
/// hunt, EMI) run twice over one backend —
///
///   solo         one after another through runCampaignTask, the
///                pre-scheduler way
///   interleaved  concurrently through CampaignScheduler (round-robin)
///
/// and the run reports the wall-clock ratio, the scheduler's fairness
/// (grant spread over the window where every campaign is live; 1.0 =
/// perfectly even), and — the part that actually matters — an
/// identity check: every campaign's interleaved report must be
/// byte-identical to its solo run. A mismatch fails the bench with a
/// nonzero exit, so CI can gate on it.
///
/// Emits machine-readable `BENCH_sched.json`; the committed copy
/// lives at bench/BENCH_sched.json.
///
///   --kernels=N   hunt campaign size (default 6; --full = 40)
///   --threads=N --backend=B --shard-size=N --cache=M  as everywhere
///   --json=PATH   where to write BENCH_sched.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "sched/CampaignScheduler.h"
#include "sched/Campaigns.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// Reads everything written to \p F and closes it.
std::string readAll(std::FILE *F) {
  std::fflush(F);
  std::rewind(F);
  std::string S;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

struct CampaignSet {
  std::vector<std::unique_ptr<CampaignTask>> Tasks;
  HuntCampaign Hunt; ///< keeps the hunt's queue alive
  std::vector<std::FILE *> Outs;
  std::vector<const char *> Names;
};

/// Builds the bench's three campaigns against \p Backend, each with a
/// fresh tmpfile report stream.
CampaignSet buildCampaigns(const HarnessArgs &Args, ExecBackend &Backend,
                           unsigned ShardSize, unsigned HuntKernels) {
  CampaignSet S;
  DiffSpec DS;
  DS.Gen.Seed = Args.Seed + 9;
  HuntSpec HS;
  HS.Mode = GenMode::Basic;
  HS.ModeName = "BASIC";
  HS.Seed = Args.Seed;
  HS.Count = HuntKernels;
  EmiSpec ES;
  ES.Bases = Args.Full ? 2 : 1;
  ES.SeedBase = Args.Seed + 4242;

  S.Outs = {std::tmpfile(), std::tmpfile(), std::tmpfile()};
  for (std::FILE *F : S.Outs)
    if (!F) {
      std::fprintf(stderr, "tmpfile failed\n");
      std::exit(1);
    }
  S.Names = {"diff", "hunt", "emi"};
  S.Tasks.push_back(makeDiffTask(DS, Backend, S.Outs[0]));
  S.Hunt = makeHuntCampaign(HS, ShardSize, Backend, S.Outs[1]);
  S.Tasks.push_back(makeEmiTask(ES, ShardSize, Backend, S.Outs[2]));
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_sched.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args = parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned HuntKernels = Args.Kernels ? Args.Kernels : (Args.Full ? 40 : 6);

  ExecOptions Opts = Args.execOptions();
  std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);
  unsigned ShardSize = Opts.resolvedShardSize();

  std::printf("scheduler throughput: diff + hunt(%u kernels) + emi over "
              "the %s backend (%u workers)\n\n",
              HuntKernels, backendKindName(Opts.Backend), Opts.Threads);

  // Phase 1: solo-sequential — each campaign owns the backend
  // end-to-end, the pre-scheduler baseline.
  CampaignSet Solo = buildCampaigns(Args, *Backend, ShardSize, HuntKernels);
  auto Start = std::chrono::steady_clock::now();
  runCampaignTask(*Solo.Tasks[0]);
  runCampaignTask(*Solo.Hunt.Main);
  runCampaignTask(*Solo.Tasks[1]);
  std::chrono::duration<double> SoloElapsed =
      std::chrono::steady_clock::now() - Start;
  std::vector<std::string> Want = {readAll(Solo.Outs[0]),
                                   readAll(Solo.Outs[1]),
                                   readAll(Solo.Outs[2])};

  // Phase 2: interleaved — the scheduler round-robins shards of all
  // three campaigns over the same backend.
  CampaignSet Inter = buildCampaigns(Args, *Backend, ShardSize, HuntKernels);
  CampaignScheduler Sched(*Backend);
  Sched.add("diff", *Inter.Tasks[0]);
  Sched.add("hunt", *Inter.Hunt.Main);
  Sched.add("emi", *Inter.Tasks[1]);
  Start = std::chrono::steady_clock::now();
  Sched.runToCompletion();
  std::chrono::duration<double> InterElapsed =
      std::chrono::steady_clock::now() - Start;
  std::vector<std::string> Got = {readAll(Inter.Outs[0]),
                                  readAll(Inter.Outs[1]),
                                  readAll(Inter.Outs[2])};

  bool Identical = Got == Want;
  double Overhead = SoloElapsed.count() > 0.0
                        ? InterElapsed.count() / SoloElapsed.count()
                        : 1.0;

  // Fairness: over the window where every campaign is still live
  // (the shortest campaign's step count, times the campaign count),
  // round-robin should spread grants evenly. 1.0 = perfectly even.
  size_t MinSteps = static_cast<size_t>(-1);
  for (const ScheduledCampaign &C : Sched.campaigns())
    MinSteps = std::min(MinSteps, C.Stats.Steps);
  size_t Window =
      std::min(Sched.allocationTrace().size(),
               MinSteps * Sched.campaigns().size());
  std::vector<size_t> Grants(Sched.campaigns().size(), 0);
  for (size_t I = 0; I != Window; ++I)
    ++Grants[Sched.allocationTrace()[I]];
  size_t MaxG = *std::max_element(Grants.begin(), Grants.end());
  size_t MinG = *std::min_element(Grants.begin(), Grants.end());
  double Fairness =
      MaxG ? static_cast<double>(MinG) / static_cast<double>(MaxG) : 1.0;

  std::printf("%-14s %10s  %s\n", "phase", "seconds", "result");
  printRule();
  std::printf("%-14s %10.3f  baseline\n", "solo", SoloElapsed.count());
  std::printf("%-14s %10.3f  %s\n", "interleaved", InterElapsed.count(),
              Identical ? "identical to solo" : "MISMATCH vs solo");
  std::printf("\ninterleaved/solo: %.3fx wall-clock, fairness %.2f over "
              "%zu grants (%zu total)\n",
              Overhead, Fairness, Window,
              Sched.allocationTrace().size());
  for (const ScheduledCampaign &C : Sched.campaigns())
    std::printf("  %-5s steps=%zu tests=%zu jobs=%zu witnesses=%zu\n",
                C.Name.c_str(), C.Stats.Steps, C.Stats.Tests, C.Stats.Jobs,
                C.Stats.Witnesses);

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"scheduler_throughput\",\"backend\":\"%s\","
               "\"hunt_kernels\":%u,\"solo_seconds\":%.6f,"
               "\"interleaved_seconds\":%.6f,\"overhead\":%.4f,"
               "\"fairness_ratio\":%.4f,\"grants\":%zu,"
               "\"identical\":%s}\n",
               backendKindName(Opts.Backend), HuntKernels,
               SoloElapsed.count(), InterElapsed.count(), Overhead,
               Fairness, Sched.allocationTrace().size(),
               Identical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  return Identical ? 0 : 1;
}
