//===- vm_throughput.cpp - Uncached campaign-cell throughput -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures **uncached cells/sec** — the number the VM fast path
/// (docs/vm.md) exists to move. The workload is the same campaign
/// column shape as cache_throughput.cpp (N kernels × the paper's
/// above-threshold configuration columns, a reference run plus an
/// optimised configuration run per column), executed with no outcome
/// cache through `runColumns(groupIntoColumns(...))` — exactly the
/// path `runShardedCampaign` drives — so dispatch strategy,
/// superinstruction fusion, per-thread engine reuse and column
/// front-end sharing all contribute.
///
/// Phases: {switch, goto} dispatch × {serial inline, thread pool}.
/// Every phase is checked outcome-identical to the first (the knobs
/// must change wall-clock only), and per-phase VM counter deltas
/// (instructions, fused dispatches, launches, engine reuses) are
/// reported.
///
/// Emits machine-readable `BENCH_vm.json`, including the frozen
/// pre-fast-path baseline measured at the seed commit on this same
/// workload (8 kernels, seed 100000, 160 cells: 78.1 cells/sec
/// serial, 79.1 with the thread backend) — the committed copy lives
/// at bench/BENCH_vm.json.
///
///   --kernels=N   kernels in the campaign (default 8)
///   --threads=N   workers for the thread-pool phases (default 4)
///   --seed=N      campaign seed base (default 100000)
///   --json=PATH   where to write BENCH_vm.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "gen/Generator.h"
#include "vm/VM.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// The seed-commit numbers for this exact workload (8 kernels, seed
/// 100000, 160 cells), kept in the JSON so trend tooling and the PR
/// acceptance check (>= 3x serial) need no second measurement.
constexpr double BaselineSerialCps = 78.1;
constexpr double BaselineThreadsCps = 79.1;

struct Phase {
  std::string Dispatch; ///< "switch" | "goto"
  std::string Sched;    ///< "serial" | "threads"
  double Seconds = 0.0;
  double CellsPerSec = 0.0;
  VmCounters Delta; ///< this process's VM counter movement
};

VmCounters counterDelta(const VmCounters &After, const VmCounters &Before) {
  VmCounters D;
  D.Instructions = After.Instructions - Before.Instructions;
  D.FusedExecuted = After.FusedExecuted - Before.FusedExecuted;
  D.Launches = After.Launches - Before.Launches;
  D.EngineReuses = After.EngineReuses - Before.EngineReuses;
  return D;
}

bool sameOutcomes(const std::vector<RunOutcome> &A,
                  const std::vector<RunOutcome> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Status != B[I].Status || A[I].OutputHash != B[I].OutputHash ||
        A[I].Message != B[I].Message || A[I].Steps != B[I].Steps ||
        A[I].OutputHead != B[I].OutputHead)
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_vm.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args = parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned Kernels = Args.Kernels ? Args.Kernels : 8;
  unsigned Threads = Args.Threads > 1 ? Args.Threads : 4;

  // The campaign column workload, byte-for-byte the cache bench's:
  // per kernel, each above-threshold column carries the shared
  // reference run plus its own optimised configuration run.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Columns;
  for (int Id : paperAboveThresholdIds())
    Columns.push_back(configById(Registry, Id));

  std::vector<TestCase> Tests;
  for (unsigned K = 0; K != Kernels; ++K) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Args.Seed + K;
    Tests.push_back(TestCase::fromGenerated(generateKernel(GO)));
  }
  std::vector<ExecJob> Jobs;
  for (const TestCase &T : Tests)
    for (const DeviceConfig &C : Columns) {
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/false, RunSettings()));
      Jobs.push_back(ExecJob::onConfig(T, C, /*Opt=*/true, RunSettings()));
    }

  std::vector<VmDispatch> Dispatches = {VmDispatch::Switch};
  if (vmHasGotoDispatch())
    Dispatches.push_back(VmDispatch::Goto);
  else
    std::fprintf(stderr,
                 "note: computed-goto dispatch not compiled in; "
                 "measuring switch only\n");

  std::printf("vm throughput: %u kernels x %zu columns = %zu cells, "
              "uncached, fusion=%s, threads phase = %u workers\n\n",
              Kernels, Columns.size(), Jobs.size(),
              vmFusionEnabled() ? "on" : "off", Threads);
  std::printf("%-8s %-8s %10s %14s %16s %12s %10s  %s\n", "dispatch",
              "sched", "seconds", "cells/sec", "instructions", "fused",
              "reuses", "result");
  printRule();

  VmDispatch SavedDispatch = vmDispatchMode();
  std::vector<RunOutcome> First;
  std::vector<Phase> Phases;
  bool AllIdentical = true;

  for (VmDispatch D : Dispatches) {
    setVmDispatchMode(D);
    for (bool Parallel : {false, true}) {
      ExecOptions E = ExecOptions::withThreads(Parallel ? Threads : 1);
      E.Backend = Parallel ? BackendKind::Threads : BackendKind::Inline;
      E.Cache = nullptr; // uncached by definition
      std::unique_ptr<ExecBackend> Backend = makeBackend(E);

      VmCounters Before = vmCounters();
      auto Start = std::chrono::steady_clock::now();
      std::vector<RunOutcome> Outs =
          Backend->runColumns(groupIntoColumns(Jobs));
      std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;

      Phase P;
      P.Dispatch = vmDispatchName(D);
      P.Sched = Parallel ? "threads" : "serial";
      P.Seconds = Elapsed.count();
      P.CellsPerSec = static_cast<double>(Jobs.size()) / P.Seconds;
      P.Delta = counterDelta(vmCounters(), Before);

      if (First.empty())
        First = std::move(Outs);
      else if (!sameOutcomes(First, Outs))
        AllIdentical = false;

      std::printf(
          "%-8s %-8s %10.3f %14.1f %16llu %12llu %10llu  %s\n",
          P.Dispatch.c_str(), P.Sched.c_str(), P.Seconds, P.CellsPerSec,
          static_cast<unsigned long long>(P.Delta.Instructions),
          static_cast<unsigned long long>(P.Delta.FusedExecuted),
          static_cast<unsigned long long>(P.Delta.EngineReuses),
          Phases.empty() ? "baseline for identity"
                         : (AllIdentical ? "identical" : "MISMATCH"));
      Phases.push_back(std::move(P));
    }
  }
  setVmDispatchMode(SavedDispatch);

  // Best serial / threaded numbers drive the headline speedups.
  double BestSerial = 0.0, BestThreads = 0.0;
  for (const Phase &P : Phases)
    (P.Sched == "serial" ? BestSerial : BestThreads) =
        std::max(P.Sched == "serial" ? BestSerial : BestThreads,
                 P.CellsPerSec);
  double SerialSpeedup = BestSerial / BaselineSerialCps;
  double ThreadsSpeedup = BestThreads / BaselineThreadsCps;
  std::printf("\nvs seed baseline: serial %.1f -> %.1f cells/sec "
              "(%.2fx), threads %.1f -> %.1f (%.2fx)  "
              "(acceptance target: >= 3x serial)\n",
              BaselineSerialCps, BestSerial, SerialSpeedup,
              BaselineThreadsCps, BestThreads, ThreadsSpeedup);

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"vm_throughput\",\"kernels\":%u,"
               "\"columns\":%zu,\"cells\":%zu,\"threads\":%u,"
               "\"fusion\":%s,\"goto_available\":%s,"
               "\"baseline\":{\"serial_cells_per_sec\":%.1f,"
               "\"threads_cells_per_sec\":%.1f},\"phases\":[",
               Kernels, Columns.size(), Jobs.size(), Threads,
               vmFusionEnabled() ? "true" : "false",
               vmHasGotoDispatch() ? "true" : "false", BaselineSerialCps,
               BaselineThreadsCps);
  for (size_t I = 0; I != Phases.size(); ++I) {
    const Phase &P = Phases[I];
    std::fprintf(J,
                 "%s{\"dispatch\":\"%s\",\"sched\":\"%s\","
                 "\"seconds\":%.6f,\"cells_per_sec\":%.1f,"
                 "\"instructions\":%llu,\"fused\":%llu,"
                 "\"launches\":%llu,\"engine_reuses\":%llu}",
                 I ? "," : "", P.Dispatch.c_str(), P.Sched.c_str(),
                 P.Seconds, P.CellsPerSec,
                 static_cast<unsigned long long>(P.Delta.Instructions),
                 static_cast<unsigned long long>(P.Delta.FusedExecuted),
                 static_cast<unsigned long long>(P.Delta.Launches),
                 static_cast<unsigned long long>(P.Delta.EngineReuses));
  }
  std::fprintf(J,
               "],\"serial_speedup_vs_baseline\":%.2f,"
               "\"threads_speedup_vs_baseline\":%.2f,"
               "\"identical\":%s}\n",
               SerialSpeedup, ThreadsSpeedup,
               AllIdentical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  return AllIdentical ? 0 : 1;
}
