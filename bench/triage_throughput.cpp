//===- triage_throughput.cpp - Pass-bisection triage throughput ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures the post-reduction triage stage (src/triage/) on its real
/// workload: N generated witnesses bisected over a fault-injected
/// pass pipeline, the bisection probes riding the same backend and
/// outcome cache campaigns use. The interesting costs are probe
/// *count* (the greedy leave-one-out search, memoized by mask) and
/// probe *execution*, which the warm cache absorbs — so the harness
/// times three phases over the same witnesses:
///
///   uncached  no cache; the correctness baseline
///   cold      fresh cache: every distinct probe executes once
///   warm      same cache again: probes are answered from the store
///
/// Every phase's full reports (line, CSV, JSONL, probe counts) are
/// byte-compared against the uncached baseline — triage is
/// deterministic across cache states, so any drift fails the gate —
/// and the run emits machine-readable `BENCH_triage.json` for trend
/// tracking (the committed copy lives at bench/BENCH_triage.json).
///
///   --triage-witnesses=N  witnesses to bisect (default 6)
///   --triage-opt          probe at the optimising level (default -O0)
///   --threads=N --backend=B --cache=M --cache-dir=D  as elsewhere
///   --json=PATH   where to write BENCH_triage.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "gen/Generator.h"
#include "triage/Triage.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// A configuration carrying all four fault-injected test passes, so
/// every witness with shift or bitwise-and features exercises a real
/// multi-pass bisection (the same ground-truth construction as
/// tests/TriageConformanceTest.cpp).
DeviceConfig faultConfig() {
  DeviceConfig C;
  C.Id = 990;
  C.Device = "triage bench device";
  C.Driver = "bench";
  for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
    B->BreakOnShiftBug = true;
    B->BreakOnAndBug = true;
    B->ShiftMarkBug = true;
    B->MarkBreakBug = true;
  }
  return C;
}

/// Everything observable about one witness's verdict, for the
/// byte-identity gate across phases.
std::string describeResult(const std::string &Label,
                           const TriageResult &R) {
  return Label + ": " + renderTriageLine(R) + "\n" +
         renderTriageCsvRow(Label, R) + renderTriageJsonl(Label, R);
}

struct Phase {
  std::string Name;
  double Seconds = 0.0;
  uint64_t Probes = 0;
  OutcomeCacheStats Stats;
};

OutcomeCacheStats delta(const OutcomeCacheStats &After,
                        const OutcomeCacheStats &Before) {
  OutcomeCacheStats D;
  D.Hits = After.Hits - Before.Hits;
  D.Misses = After.Misses - Before.Misses;
  D.Coalesced = After.Coalesced - Before.Coalesced;
  D.DiskHits = After.DiskHits - Before.DiskHits;
  D.BadEntries = After.BadEntries - Before.BadEntries;
  return D;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_triage.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args =
      parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned Witnesses =
      Args.TriageWitnesses ? Args.TriageWitnesses : 6;

  DeviceConfig Config = faultConfig();
  std::vector<TestCase> Tests;
  std::vector<std::string> Labels;
  for (unsigned K = 0; K != Witnesses; ++K) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Args.Seed + K;
    Tests.push_back(TestCase::fromGenerated(generateKernel(GO)));
    Labels.push_back("seed " + std::to_string(GO.Seed));
  }

  ExecOptions Plain = Args.execOptions();
  Plain.Cache = nullptr; // the baseline must not be cached

  OutcomeCacheOptions CO;
  CO.Mode = Args.Cache == CacheMode::Off ? CacheMode::Mem : Args.Cache;
  CO.Dir = Args.CacheDir;
  if (Args.CacheMemMb)
    CO.MemBudgetBytes = static_cast<size_t>(Args.CacheMemMb) << 20;
  CO.KeySalt = cacheKeySalt(Plain);
  std::shared_ptr<OutcomeCache> Cache = makeOutcomeCache(CO);
  ExecOptions Cached = Plain;
  Cached.Cache = Cache;

  std::printf("triage throughput: %u witnesses over a fault-injected "
              "pipeline at %s, cache=%s, backend=%s\n\n",
              Witnesses, Args.TriageOpt ? "O2" : "O0",
              cacheModeName(CO.Mode), backendKindName(Plain.Backend));
  std::printf("%-10s %10s %10s %14s %10s %10s %10s  %s\n", "phase",
              "seconds", "probes", "probes/sec", "hits", "misses",
              "speedup", "result");
  printRule();

  std::string Baseline;
  std::vector<Phase> Phases;
  uint64_t TriagedCount = 0;
  double ColdSecs = 0.0, WarmSecs = 0.0;
  bool AllIdentical = true;

  for (const char *Name : {"uncached", "cold", "warm"}) {
    bool Uncached = std::string(Name) == "uncached";
    TriageOptions TO;
    TO.Exec = Uncached ? Plain : Cached;
    OutcomeCacheStats Before = Cache->stats();

    Phase P;
    P.Name = Name;
    std::string Report;
    uint64_t Triaged = 0;
    auto Start = std::chrono::steady_clock::now();
    for (size_t I = 0; I != Tests.size(); ++I) {
      TriageResult R =
          triageWitness(Tests[I], Config, Args.TriageOpt, TO);
      Report += describeResult(Labels[I], R);
      P.Probes += R.Probes;
      if (R.Reproduced)
        ++Triaged;
    }
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    P.Seconds = Elapsed.count();
    P.Stats = delta(Cache->stats(), Before);

    if (Uncached) {
      Baseline = std::move(Report);
      TriagedCount = Triaged;
    } else if (Report != Baseline)
      AllIdentical = false;
    if (std::string(Name) == "cold")
      ColdSecs = P.Seconds;
    if (std::string(Name) == "warm")
      WarmSecs = P.Seconds;

    std::printf("%-10s %10.3f %10llu %14.1f %10llu %10llu %9.2fx  %s\n",
                P.Name.c_str(), P.Seconds,
                static_cast<unsigned long long>(P.Probes),
                P.Seconds > 0.0
                    ? static_cast<double>(P.Probes) / P.Seconds
                    : 0.0,
                static_cast<unsigned long long>(P.Stats.Hits),
                static_cast<unsigned long long>(P.Stats.Misses),
                ColdSecs > 0.0 ? ColdSecs / P.Seconds : 1.0,
                Uncached ? "baseline"
                         : (AllIdentical ? "identical to uncached"
                                         : "MISMATCH vs uncached"));
    Phases.push_back(std::move(P));
  }

  double ProbesPerWitness =
      Witnesses ? static_cast<double>(Phases[0].Probes) / Witnesses : 0.0;
  double WarmSpeedup = WarmSecs > 0.0 ? ColdSecs / WarmSecs : 0.0;
  std::printf("\n%llu/%u witnesses reproduced; %.1f probes/witness; "
              "warm vs cold wall-clock %.2fx\n",
              static_cast<unsigned long long>(TriagedCount), Witnesses,
              ProbesPerWitness, WarmSpeedup);

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"triage_throughput\",\"backend\":\"%s\","
               "\"cache\":\"%s\",\"witnesses\":%u,\"reproduced\":%llu,"
               "\"probes\":%llu,\"probes_per_witness\":%.2f,",
               backendKindName(Plain.Backend), cacheModeName(CO.Mode),
               Witnesses,
               static_cast<unsigned long long>(TriagedCount),
               static_cast<unsigned long long>(Phases[0].Probes),
               ProbesPerWitness);
  for (const Phase &P : Phases)
    std::fprintf(J,
                 "\"%s\":{\"seconds\":%.6f,\"probes\":%llu,"
                 "\"hits\":%llu,\"misses\":%llu},",
                 P.Name.c_str(), P.Seconds,
                 static_cast<unsigned long long>(P.Probes),
                 static_cast<unsigned long long>(P.Stats.Hits),
                 static_cast<unsigned long long>(P.Stats.Misses));
  std::fprintf(J, "\"warm_speedup_vs_cold\":%.2f,\"identical\":%s}\n",
               WarmSpeedup, AllIdentical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  if (!AllIdentical)
    return 1;
  return 0;
}
