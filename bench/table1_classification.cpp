//===- table1_classification.cpp - Reproduces Table 1 -------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 1 (§7.1): every configuration runs the initial
/// kernel set (100 kernels per mode at full scale) with and without
/// optimisations; a configuration is above the reliability threshold
/// when at most 25% of its results are build failures, crashes,
/// timeouts or majority-vote wrong-code results. The final column
/// compares our classification against the paper's.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "oracle/Campaign.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);
  unsigned PerMode = Args.Kernels ? Args.Kernels : (Args.Full ? 100 : 10);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  CampaignSettings S;
  S.KernelsPerMode = PerMode;
  S.SeedBase = Args.Seed;
  S.Exec = Args.execOptions();
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 256;

  if (Args.Format == TableFormat::Text) {
    std::printf("Table 1: configuration classification against the 25%% "
                "reliability threshold\n");
    std::printf("(%u kernels per mode, %u total per configuration run "
                "at both opt levels)\n\n",
                PerMode, PerMode * 6 * 2);
  }

  std::vector<ReliabilityRow> Rows =
      classifyConfigurations(Registry, S);

  if (Args.Format != TableFormat::Text) {
    EmitTable T;
    T.Title = "Table 1: configuration classification";
    T.Columns = {"config", "device", "type",   "fail_pct",
                 "wrong",  "above",  "paper_above"};
    char Pct[32];
    for (const ReliabilityRow &Row : Rows) {
      const DeviceConfig &C = configById(Registry, Row.ConfigId);
      std::snprintf(Pct, sizeof(Pct), "%.1f",
                    100.0 * Row.Counts.failureFraction());
      T.addRow({std::to_string(C.Id), C.Device, C.typeName(), Pct,
                std::to_string(Row.Counts.W),
                Row.AboveThreshold ? "yes" : "no",
                C.PaperAboveThreshold ? "yes" : "no"});
    }
    emitTable(T, Args.Format, stdout);
    return 0;
  }

  printRule();
  std::printf("%-5s %-34s %-11s %7s %7s  %-9s %s\n", "Conf.", "Device",
              "Type", "fail%", "w", "above?", "paper");
  printRule();
  unsigned Agreements = 0;
  for (const ReliabilityRow &Row : Rows) {
    const DeviceConfig &C = configById(Registry, Row.ConfigId);
    bool Agrees = Row.AboveThreshold == C.PaperAboveThreshold;
    Agreements += Agrees;
    std::printf("%-5d %-34s %-11s %6.1f%% %7u  %-9s %s %s\n", C.Id,
                C.Device.c_str(), C.typeName(),
                100.0 * Row.Counts.failureFraction(), Row.Counts.W,
                Row.AboveThreshold ? "yes" : "no",
                C.PaperAboveThreshold ? "yes" : "no",
                Agrees ? "" : "  <-- MISMATCH");
  }
  printRule();
  std::printf("classification agreement with the paper: %u / %zu\n",
              Agreements, Rows.size());
  return 0;
}
