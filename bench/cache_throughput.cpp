//===- cache_throughput.cpp - Outcome-cache dedupe throughput ------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures the content-addressed outcome cache (exec/OutcomeCache.h)
/// on the dedupe-heavy workload campaigns actually produce: every
/// configuration column re-dispatches the same reference run per
/// kernel (batch-level coalescing), and a second pass over the same
/// campaign replays every descriptor verbatim (the reduction-fixpoint
/// / re-run-the-column pattern the warm cache absorbs entirely).
///
/// Three timed phases over one job list:
///
///   uncached  the plain backend — the correctness baseline
///   cold      fresh cache: every unique descriptor executes once,
///             duplicates coalesce within each batch
///   warm      same cache again: everything is a hit
///
/// Every phase is checked outcome-identical to the uncached baseline
/// (cache hits must be observationally invisible), and the run emits
/// machine-readable `BENCH_cache.json` for trend tracking — the
/// committed copy lives at bench/BENCH_cache.json.
///
///   --kernels=N   kernels in the campaign (default 6)
///   --threads=N   worker count for the execution backend
///   --backend=B   inline | threads | procs | remote
///   --cache=M     mem (default) | disk   --cache-dir=D  --cache-mem-mb=N
///   --json=PATH   where to write BENCH_cache.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "gen/Generator.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

struct Phase {
  std::string Name;
  double Seconds = 0.0;
  double CellsPerSec = 0.0;
  OutcomeCacheStats Stats; ///< deltas for this phase
};

OutcomeCacheStats delta(const OutcomeCacheStats &After,
                        const OutcomeCacheStats &Before) {
  OutcomeCacheStats D;
  D.Hits = After.Hits - Before.Hits;
  D.Misses = After.Misses - Before.Misses;
  D.Coalesced = After.Coalesced - Before.Coalesced;
  D.DiskHits = After.DiskHits - Before.DiskHits;
  D.BadEntries = After.BadEntries - Before.BadEntries;
  return D;
}

bool sameOutcomes(const std::vector<RunOutcome> &A,
                  const std::vector<RunOutcome> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Status != B[I].Status || A[I].OutputHash != B[I].OutputHash ||
        A[I].Message != B[I].Message || A[I].Steps != B[I].Steps ||
        A[I].OutputHead != B[I].OutputHead)
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_cache.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args =
      parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned Kernels = Args.Kernels ? Args.Kernels : 6;

  // The campaign-column workload: per kernel, each above-threshold
  // configuration column carries the *same* reference run plus its
  // own configuration run — exactly the duplication the coordinator
  // coalesces in flight.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Columns;
  for (int Id : paperAboveThresholdIds())
    Columns.push_back(configById(Registry, Id));

  std::vector<TestCase> Tests;
  for (unsigned K = 0; K != Kernels; ++K) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Args.Seed + K;
    Tests.push_back(TestCase::fromGenerated(generateKernel(GO)));
  }
  std::vector<ExecJob> Jobs;
  for (const TestCase &T : Tests)
    for (const DeviceConfig &C : Columns) {
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/false, RunSettings()));
      Jobs.push_back(ExecJob::onConfig(T, C, /*Opt=*/true, RunSettings()));
    }

  ExecOptions Plain = Args.execOptions();
  Plain.Cache = nullptr; // the baseline must not be cached

  OutcomeCacheOptions CO;
  CO.Mode = Args.Cache == CacheMode::Off ? CacheMode::Mem : Args.Cache;
  CO.Dir = Args.CacheDir;
  if (Args.CacheMemMb)
    CO.MemBudgetBytes = static_cast<size_t>(Args.CacheMemMb) << 20;
  std::shared_ptr<OutcomeCache> Cache = makeOutcomeCache(CO);
  ExecOptions Cached = Plain;
  Cached.Cache = Cache;

  std::printf("cache throughput: %u kernels x %zu columns = %zu cells "
              "(%zu unique), cache=%s, backend=%s\n\n",
              Kernels, Columns.size(), Jobs.size(),
              Jobs.size() - size_t(Kernels) * (Columns.size() - 1),
              cacheModeName(CO.Mode), backendKindName(Plain.Backend));
  std::printf("%-10s %10s %14s %10s %10s %10s %10s  %s\n", "phase",
              "seconds", "cells/sec", "hits", "misses", "coalesced",
              "speedup", "result");
  printRule();

  std::vector<RunOutcome> Baseline;
  std::vector<Phase> Phases;
  double ColdCps = 0.0, WarmCps = 0.0, ColdSecs = 0.0;
  bool AllIdentical = true;

  for (const char *Name : {"uncached", "cold", "warm"}) {
    bool Uncached = std::string(Name) == "uncached";
    OutcomeCacheStats Before = Cache->stats();
    std::unique_ptr<ExecBackend> Backend =
        makeBackend(Uncached ? Plain : Cached);
    auto Start = std::chrono::steady_clock::now();
    std::vector<RunOutcome> Outs = Backend->run(Jobs);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;

    Phase P;
    P.Name = Name;
    P.Seconds = Elapsed.count();
    P.CellsPerSec = static_cast<double>(Jobs.size()) / P.Seconds;
    P.Stats = delta(Cache->stats(), Before);

    if (Uncached)
      Baseline = std::move(Outs);
    else if (!sameOutcomes(Baseline, Outs))
      AllIdentical = false;
    if (std::string(Name) == "cold") {
      ColdCps = P.CellsPerSec;
      ColdSecs = P.Seconds;
    }
    if (std::string(Name) == "warm")
      WarmCps = P.CellsPerSec;

    std::printf("%-10s %10.3f %14.1f %10llu %10llu %10llu %9.2fx  %s\n",
                P.Name.c_str(), P.Seconds, P.CellsPerSec,
                static_cast<unsigned long long>(P.Stats.Hits),
                static_cast<unsigned long long>(P.Stats.Misses),
                static_cast<unsigned long long>(P.Stats.Coalesced),
                ColdSecs > 0.0 ? ColdSecs / P.Seconds : 1.0,
                Uncached ? "baseline"
                         : (AllIdentical ? "identical to uncached"
                                         : "MISMATCH vs uncached"));
    Phases.push_back(std::move(P));
  }

  double WarmSpeedup = ColdCps > 0.0 ? WarmCps / ColdCps : 0.0;
  double WarmHitRate =
      Phases.back().Stats.Hits + Phases.back().Stats.Misses
          ? static_cast<double>(Phases.back().Stats.Hits) /
                static_cast<double>(Phases.back().Stats.Hits +
                                    Phases.back().Stats.Misses)
          : 0.0;
  std::printf("\nwarm vs cold: %.2fx cells/sec, warm hit rate %.1f%% "
              "(target: >= 2x on the dedupe-heavy workload)\n",
              WarmSpeedup, 100.0 * WarmHitRate);

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"cache_throughput\",\"backend\":\"%s\","
               "\"cache\":\"%s\",\"kernels\":%u,\"columns\":%zu,"
               "\"cells\":%zu,",
               backendKindName(Plain.Backend), cacheModeName(CO.Mode),
               Kernels, Columns.size(), Jobs.size());
  for (const Phase &P : Phases)
    std::fprintf(J,
                 "\"%s\":{\"seconds\":%.6f,\"cells_per_sec\":%.1f,"
                 "\"hits\":%llu,\"misses\":%llu,\"coalesced\":%llu},",
                 P.Name.c_str(), P.Seconds, P.CellsPerSec,
                 static_cast<unsigned long long>(P.Stats.Hits),
                 static_cast<unsigned long long>(P.Stats.Misses),
                 static_cast<unsigned long long>(P.Stats.Coalesced));
  std::fprintf(J,
               "\"warm_speedup_vs_cold\":%.2f,\"warm_hit_rate\":%.4f,"
               "\"identical\":%s}\n",
               WarmSpeedup, WarmHitRate, AllIdentical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  if (!AllIdentical)
    return 1;
  return 0;
}
