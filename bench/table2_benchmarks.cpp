//===- table2_benchmarks.cpp - Reproduces Table 2 ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 2 (§7.2): the benchmark inventory studied with EMI
/// testing. The LoC column counts our mini-kernel sources; the "Uses
/// FP?" column reports the *original* benchmark's property (our
/// substitutes are integer-only by design, §9 of the paper notes
/// CLsmith-style testing demands precise results).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "corpus/Benchmarks.h"

#include <cstdio>

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  HarnessArgs Args = parseArgs(Argc, Argv);

  if (Args.Format != TableFormat::Text) {
    EmitTable T;
    T.Title = "Table 2: OpenCL benchmarks studied using EMI testing";
    T.Columns = {"suite", "benchmark", "description", "kernels",
                 "loc",   "uses_fp",   "racy"};
    for (const Benchmark &B : buildBenchmarkSuite())
      T.addRow({B.Suite, B.Name, B.Description,
                std::to_string(B.NumKernels),
                std::to_string(B.linesOfCode()),
                B.UsesFloatInPaper ? "yes" : "no",
                B.HasPlantedRace ? "yes" : "no"});
    emitTable(T, Args.Format, stdout);
    return 0;
  }

  std::printf("Table 2: OpenCL benchmarks studied using EMI testing\n\n");
  printRule();
  std::printf("%-9s %-11s %-32s %8s %6s %8s %6s\n", "Suite",
              "Benchmark", "Description", "Kernels", "LoC", "UsesFP?",
              "racy?");
  printRule();
  for (const Benchmark &B : buildBenchmarkSuite()) {
    std::printf("%-9s %-11s %-32s %8u %6u %8s %6s\n", B.Suite.c_str(),
                B.Name.c_str(), B.Description.c_str(), B.NumKernels,
                B.linesOfCode(), B.UsesFloatInPaper ? "yes" : "no",
                B.HasPlantedRace ? "yes" : "no");
  }
  printRule();
  std::printf("\nNotes: kernel counts mirror the originals (sad ships "
              "three kernels; our substitute folds them into one "
              "source). 'racy?' marks the two benchmarks carrying the "
              "data races the paper discovered (spmv, myocyte); they "
              "are excluded from EMI testing as in the paper.\n");
  return 0;
}
