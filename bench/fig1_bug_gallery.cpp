//===- fig1_bug_gallery.cpp - Reproduces Figure 1 ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Replays the Figure 1 kernels (compiler bugs of the configurations
/// below the reliability threshold) against the simulated zoo and
/// prints expected-vs-observed per configuration.
///
//===----------------------------------------------------------------------===//

#include "GalleryReplay.h"

using namespace clfuzz;
using namespace clfuzz::bench;

int main(int Argc, char **Argv) {
  return replayGallery(
      buildFigure1Gallery(),
      "Figure 1: compiler bugs of the below-threshold configurations",
      parseArgs(Argc, Argv));
}
