//===- fleet_throughput.cpp - Elastic-fleet churn overhead -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Measures what fleet churn costs: the same campaign cell batch runs
/// twice over loopback worker fleets —
///
///   static   two listen-mode workers, named up front, no churn
///   churn    one static worker plus a join+kill schedule: a
///            rendezvous worker joins mid-run, a second joins and
///            then self-destructs (--die-after-jobs), its in-flight
///            window requeuing onto the survivors
///
/// and reports cells/sec for both, the churn/static ratio, and — the
/// part that actually matters — an identity check: both runs must be
/// outcome-identical to the inline reference (docs/fleet.md). A
/// mismatch fails the bench with a nonzero exit, so CI can gate on it.
///
/// Emits machine-readable `BENCH_fleet.json`; the committed copy
/// lives at bench/BENCH_fleet.json.
///
///   --kernels=N   batch size knob (default 8; --full = 24)
///   --seed=N      kernel seed base
///   --json=PATH   where to write BENCH_fleet.json (default: CWD)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "device/DeviceConfig.h"
#include "exec/FleetRegistry.h"
#include "exec/WorkerLoop.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)

#include <thread>

using namespace clfuzz;
using namespace clfuzz::bench;

namespace {

/// The campaign cell batch: every kernel against a 4-config zoo at
/// both opt levels plus one reference run — the shape a hunt shard
/// dispatches.
std::vector<ExecJob> buildBatch(const std::vector<TestCase> &Tests,
                                const std::vector<DeviceConfig> &Zoo) {
  std::vector<ExecJob> Jobs;
  for (const TestCase &T : Tests) {
    for (const DeviceConfig &C : Zoo)
      for (bool Opt : {false, true})
        Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
    Jobs.push_back(ExecJob::onReference(T, true, RunSettings()));
  }
  return Jobs;
}

bool sameOutcomes(const std::vector<RunOutcome> &A,
                  const std::vector<RunOutcome> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Status != B[I].Status || A[I].OutputHash != B[I].OutputHash ||
        A[I].Message != B[I].Message || A[I].Steps != B[I].Steps)
      return false;
  return true;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  // Peel off --json= (harness-local) before the shared flag parser
  // sees it.
  std::string JsonPath = "BENCH_fleet.json";
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else
      Rest.push_back(Argv[I]);
  }
  HarnessArgs Args = parseArgs(static_cast<int>(Rest.size()), Rest.data());
  unsigned Kernels = Args.Kernels ? Args.Kernels : (Args.Full ? 24 : 8);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo;
  for (int Id : {1, 12, 14, 19})
    Zoo.push_back(configById(Registry, Id));

  std::vector<TestCase> Tests;
  for (unsigned I = 0; I != Kernels; ++I) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Args.Seed + I;
    Tests.push_back(TestCase::fromGenerated(generateKernel(GO)));
  }
  std::vector<ExecJob> Jobs = buildBatch(Tests, Zoo);

  std::printf("fleet throughput: %zu cells (%u kernels x %zu configs x 2 "
              "opt + ref)\n\n",
              Jobs.size(), Kernels, Zoo.size());

  InlineBackend Reference;
  std::vector<RunOutcome> Want = Reference.run(Jobs);

  // Phase 1: a static two-worker fleet, no churn.
  double StaticSec;
  bool StaticIdentical;
  {
    WorkerOptions WO;
    WO.Jobs = 2;
    WorkerServer W1(WO), W2(WO);
    if (!W1.start() || !W2.start()) {
      std::fprintf(stderr, "cannot start loopback workers\n");
      return 1;
    }
    ExecOptions O;
    O.Backend = BackendKind::Remote;
    O.RemoteWorkers = {"127.0.0.1:" + std::to_string(W1.port()),
                       "127.0.0.1:" + std::to_string(W2.port())};
    std::unique_ptr<ExecBackend> B = makeRemoteBackend(O);
    auto Start = std::chrono::steady_clock::now();
    std::vector<RunOutcome> Got = B->run(Jobs);
    StaticSec = secondsSince(Start);
    StaticIdentical = sameOutcomes(Want, Got);
  }

  // Phase 2: the same fleet capacity arriving as churn — one static
  // worker up front, one rendezvous joiner, and one joiner that dies
  // mid-run with jobs in flight.
  double ChurnSec;
  bool ChurnIdentical;
  FleetCounters Delta;
  {
    WorkerOptions WO;
    WO.Jobs = 2;
    WorkerServer Static(WO);
    if (!Static.start()) {
      std::fprintf(stderr, "cannot start loopback worker\n");
      return 1;
    }
    std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
    WorkerOptions JO;
    JO.Connect = "127.0.0.1:" + std::to_string(R->port());
    JO.Jobs = 2;
    WorkerOptions KO = JO;
    KO.DieAfterJobs = 7;
    WorkerServer Joiner(JO), Dying(KO);
    std::thread Churn([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      Joiner.start();
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      Dying.start();
    });

    ExecOptions O;
    O.Backend = BackendKind::Remote;
    O.RemoteWorkers = {"127.0.0.1:" + std::to_string(Static.port())};
    O.Fleet = R;
    std::unique_ptr<ExecBackend> B = makeRemoteBackend(O);
    FleetCounters F0 = fleetCounters();
    auto Start = std::chrono::steady_clock::now();
    std::vector<RunOutcome> Got = B->run(Jobs);
    ChurnSec = secondsSince(Start);
    FleetCounters F1 = fleetCounters();
    Churn.join();
    ChurnIdentical = sameOutcomes(Want, Got);
    Delta.Joins = F1.Joins - F0.Joins;
    Delta.Leaves = F1.Leaves - F0.Leaves;
    Delta.Evictions = F1.Evictions - F0.Evictions;
    Delta.Redials = F1.Redials - F0.Redials;
    Delta.Requeues = F1.Requeues - F0.Requeues;
  }

  bool Identical = StaticIdentical && ChurnIdentical;
  double StaticRate = StaticSec > 0.0 ? Jobs.size() / StaticSec : 0.0;
  double ChurnRate = ChurnSec > 0.0 ? Jobs.size() / ChurnSec : 0.0;
  double Ratio = StaticRate > 0.0 ? ChurnRate / StaticRate : 0.0;

  std::printf("%-14s %10s %12s  %s\n", "fleet", "seconds", "cells/sec",
              "result");
  printRule();
  std::printf("%-14s %10.3f %12.1f  %s\n", "static x2", StaticSec,
              StaticRate,
              StaticIdentical ? "identical to inline" : "MISMATCH");
  std::printf("%-14s %10.3f %12.1f  %s\n", "churn", ChurnSec, ChurnRate,
              ChurnIdentical ? "identical to inline" : "MISMATCH");
  std::printf("\nchurn/static: %.3fx throughput; churn saw "
              "joins=%llu evictions=%llu requeues=%llu\n",
              Ratio, static_cast<unsigned long long>(Delta.Joins),
              static_cast<unsigned long long>(Delta.Evictions),
              static_cast<unsigned long long>(Delta.Requeues));

  std::FILE *J = std::fopen(JsonPath.c_str(), "w");
  if (!J) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::fprintf(J,
               "{\"bench\":\"fleet_throughput\",\"cells\":%zu,"
               "\"kernels\":%u,\"static_seconds\":%.6f,"
               "\"churn_seconds\":%.6f,\"static_cells_per_sec\":%.1f,"
               "\"churn_cells_per_sec\":%.1f,\"churn_ratio\":%.4f,"
               "\"joins\":%llu,\"evictions\":%llu,\"requeues\":%llu,"
               "\"identical\":%s}\n",
               Jobs.size(), Kernels, StaticSec, ChurnSec, StaticRate,
               ChurnRate, Ratio,
               static_cast<unsigned long long>(Delta.Joins),
               static_cast<unsigned long long>(Delta.Evictions),
               static_cast<unsigned long long>(Delta.Requeues),
               Identical ? "true" : "false");
  std::fclose(J);
  std::printf("wrote %s\n", JsonPath.c_str());

  return Identical ? 0 : 1;
}

#else // platform without POSIX sockets: nothing to measure.

int main() {
  std::printf("fleet_throughput: no socket support on this platform\n");
  return 0;
}

#endif
