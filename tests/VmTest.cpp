//===- VmTest.cpp - Bytecode VM execution semantics tests ------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end semantics tests: parse -> sema -> codegen -> launch, then
/// read the `out` buffer. Also validates the genuine (not faked)
/// behaviour of the layout/comma bug models on the paper's Figure 1/2
/// kernels.
///
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"
#include "minicl/Sema.h"
#include "vm/Codegen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

struct RunOutcome {
  LaunchResult LR;
  std::vector<uint64_t> Out;
};

/// Compiles and runs a kernel whose first parameter is
/// `global ulong *out`; extra integer buffers may be appended.
RunOutcome runKernel(const std::string &Source, NDRange Range,
                     const CodegenOptions &CG = {},
                     std::vector<Buffer> ExtraBuffers = {},
                     LaunchOptions *CustomOpts = nullptr) {
  ASTContext Ctx;
  DiagEngine Diags;
  EXPECT_TRUE(parseProgram(Source, Ctx, Diags)) << Diags.str();
  EXPECT_TRUE(checkProgram(Ctx, Diags)) << Diags.str();
  CodegenResult CR = compileToBytecode(Ctx, CG);
  EXPECT_TRUE(CR.Ok) << CR.Error;

  RunOutcome R;
  if (!CR.Ok)
    return R;

  std::vector<Buffer> Buffers;
  Buffer Out;
  Out.Space = AddressSpace::Global;
  Out.Bytes.assign(Range.globalLinear() * 8, 0);
  Buffers.push_back(std::move(Out));
  for (Buffer &B : ExtraBuffers)
    Buffers.push_back(std::move(B));

  std::vector<KernelArg> Args;
  for (unsigned I = 0; I != Buffers.size(); ++I)
    Args.push_back(KernelArg::buffer(I));
  // Drop surplus args if the kernel takes fewer.

  LaunchOptions Opts;
  if (CustomOpts)
    Opts = *CustomOpts;
  Opts.Range = Range;
  Args.resize(CR.Module.kernel().Params.size(), KernelArg::buffer(0));

  R.LR = launchKernel(CR.Module, Buffers, Args, Opts);
  for (uint64_t I = 0; I != Range.globalLinear(); ++I)
    R.Out.push_back(Buffers[0].readScalar(I * 8, 8));
  return R;
}

NDRange single() {
  NDRange R;
  R.Global[0] = 1;
  R.Local[0] = 1;
  return R;
}

NDRange groupOf(uint32_t N) {
  NDRange R;
  R.Global[0] = N;
  R.Local[0] = N;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Basic semantics
//===----------------------------------------------------------------------===//

TEST(VmTest, WritesThreadIds) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  out[get_global_id(0)] = get_global_id(0) * 3;\n"
                     "}\n",
                     groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  for (uint64_t I = 0; I != 8; ++I)
    EXPECT_EQ(R.Out[I], I * 3);
}

TEST(VmTest, ArithmeticAndPrecedence) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int a = 7, b = 3;\n"
                     "  out[0] = a * b + a / b - a % b + (a << 2) + (a >> 1);\n"
                     "}\n",
                     single());
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 7ull * 3 + 2 - 1 + 28 + 3);
}

TEST(VmTest, SignedNarrowingAndWidening) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  char c = -1;\n"
                     "  int i = c;\n"
                     "  uint u = c;\n"
                     "  out[0] = i == -1;\n"
                     "  out[1] = u;\n"
                     "  out[2] = (char)(300);\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 1u);
  EXPECT_EQ(R.Out[1], 0xffffffffull);
  EXPECT_EQ(R.Out[2], 300 & 0xff); // 44
}

TEST(VmTest, UnsignedWraparound) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  uint x = 0;\n"
                     "  x = x - 1;\n"
                     "  out[0] = x;\n"
                     "}\n",
                     single());
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], 0xffffffffull);
}

TEST(VmTest, ShortCircuitEvaluation) {
  auto R = runKernel("int bump(int *p) { *p = *p + 1; return 1; }\n"
                     "kernel void k(global ulong *out) {\n"
                     "  int n = 0;\n"
                     "  int a = 0 && bump(&n);\n"
                     "  int b = 1 || bump(&n);\n"
                     "  out[0] = n;\n"
                     "  out[1] = a;\n"
                     "  out[2] = b;\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 0u); // bump never called
  EXPECT_EQ(R.Out[1], 0u);
  EXPECT_EQ(R.Out[2], 1u);
}

TEST(VmTest, LoopsAndBreakContinue) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int sum = 0;\n"
                     "  for (int i = 0; i < 10; i++) {\n"
                     "    if (i == 3) continue;\n"
                     "    if (i == 7) break;\n"
                     "    sum += i;\n"
                     "  }\n"
                     "  int w = 0;\n"
                     "  while (w < 5) w++;\n"
                     "  int d = 0;\n"
                     "  do { d++; } while (d < 3);\n"
                     "  out[0] = sum; out[1] = w; out[2] = d;\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 0u + 1 + 2 + 4 + 5 + 6);
  EXPECT_EQ(R.Out[1], 5u);
  EXPECT_EQ(R.Out[2], 3u);
}

TEST(VmTest, IncrementDecrementSemantics) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int x = 5;\n"
                     "  out[0] = x++;\n"
                     "  out[1] = x;\n"
                     "  out[2] = ++x;\n"
                     "  out[3] = x--;\n"
                     "  out[4] = --x;\n"
                     "}\n",
                     groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 5u);
  EXPECT_EQ(R.Out[1], 6u);
  EXPECT_EQ(R.Out[2], 7u);
  EXPECT_EQ(R.Out[3], 7u);
  EXPECT_EQ(R.Out[4], 5u);
}

TEST(VmTest, CompoundAssignmentWidening) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  char c = 100;\n"
                     "  c += 100;\n" // operates in int, narrows back
                     "  out[0] = (uint)(int)c;\n"
                     "}\n",
                     single());
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], maskToWidth(static_cast<uint64_t>(int64_t{-56}), 32));
}

TEST(VmTest, TernaryAndComma) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int x = 4;\n"
                     "  out[0] = x > 2 ? 10 : 20;\n"
                     "  out[1] = (x = 7, x + 1);\n"
                     "}\n",
                     groupOf(2));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 10u);
  EXPECT_EQ(R.Out[1], 8u);
}

TEST(VmTest, FunctionsAndPointers) {
  auto R = runKernel("void add3(int *p) { *p += 3; }\n"
                     "int twice(int v) { return v * 2; }\n"
                     "kernel void k(global ulong *out) {\n"
                     "  int x = 10;\n"
                     "  add3(&x);\n"
                     "  out[0] = twice(x);\n"
                     "}\n",
                     single());
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 26u);
}

TEST(VmTest, ArraysAndNestedStructs) {
  auto R = runKernel("typedef struct { int a; int arr[4]; } Inner;\n"
                     "typedef struct { Inner in; long tail; } Outer;\n"
                     "kernel void k(global ulong *out) {\n"
                     "  Outer o = { { 5, { 1, 2, 3, 4 } }, 100 };\n"
                     "  Outer copy;\n"
                     "  copy = o;\n"
                     "  copy.in.arr[2] = 30;\n"
                     "  out[0] = o.in.arr[2];\n"
                     "  out[1] = copy.in.a + copy.in.arr[2] + copy.tail;\n"
                     "}\n",
                     groupOf(2));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 3u);
  EXPECT_EQ(R.Out[1], 5u + 30 + 100);
}

TEST(VmTest, PartialInitialisationZeroFills) {
  auto R = runKernel("typedef struct { int a; int b; int c[3]; } S;\n"
                     "kernel void k(global ulong *out) {\n"
                     "  S s = { 9 };\n"
                     "  out[0] = s.a; out[1] = s.b; out[2] = s.c[2];\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 9u);
  EXPECT_EQ(R.Out[1], 0u);
  EXPECT_EQ(R.Out[2], 0u);
}

//===----------------------------------------------------------------------===//
// Vectors
//===----------------------------------------------------------------------===//

TEST(VmTest, VectorConstructSwizzleArithmetic) {
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  int4 v = (int4)((int2)(1, 2), 3, 4);\n"
      "  int4 w = v + 10;\n"
      "  int4 x = w * v;\n"
      "  out[0] = x.x; out[1] = x.y; out[2] = x.z; out[3] = x.w;\n"
      "  int2 sw = v.wy;\n"
      "  out[4] = sw.x; out[5] = sw.y;\n"
      "}\n",
      groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 11u);
  EXPECT_EQ(R.Out[1], 24u);
  EXPECT_EQ(R.Out[2], 39u);
  EXPECT_EQ(R.Out[3], 56u);
  EXPECT_EQ(R.Out[4], 4u);
  EXPECT_EQ(R.Out[5], 2u);
}

TEST(VmTest, VectorComparisonsYieldMasks) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int4 a = (int4)(1, 5, 3, 7);\n"
                     "  int4 b = (int4)(4, 2, 3, 9);\n"
                     "  int4 c = a < b;\n"
                     "  out[0] = (uint)c.x; out[1] = (uint)c.y;\n"
                     "  out[2] = (uint)c.z; out[3] = (uint)c.w;\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 0xffffffffull);
  EXPECT_EQ(R.Out[1], 0u);
  EXPECT_EQ(R.Out[2], 0u);
  EXPECT_EQ(R.Out[3], 0xffffffffull);
}

TEST(VmTest, VectorConvertAndComponentStore) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  uchar4 u = (uchar4)(200, 100, 50, 25);\n"
                     "  int4 i = convert_int4(u);\n"
                     "  i.x = 1000;\n"
                     "  out[0] = i.x; out[1] = i.y;\n"
                     "  short8 s = (short8)(1,2,3,4,5,6,7,8);\n"
                     "  out[2] = s.s7;\n"
                     "}\n",
                     groupOf(4));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 1000u);
  EXPECT_EQ(R.Out[1], 100u);
  EXPECT_EQ(R.Out[2], 8u);
}

TEST(VmTest, RotateIsCorrectWithoutBugModel) {
  // Figure 2(b): rotate((uint2)(1,1),(uint2)(0,0)).x must be 1.
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  out[get_global_id(0)] = rotate((uint2)(1, 1), (uint2)(0, 0)).x;\n"
      "}\n",
      single());
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], 1u);
}

TEST(VmTest, IntegerBuiltins) {
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  out[0] = clamp(5, 1, 3);\n"
      "  out[1] = rotate(0x80000001u, 1u);\n"
      "  out[2] = min(-3, 2);\n"
      "  out[3] = max(7u, 9u);\n"
      "  out[4] = abs(-5);\n"
      "  out[5] = add_sat((char)120, (char)100);\n"
      "  out[6] = hadd(7, 8);\n"
      "  out[7] = mul_hi(0x10000, 0x10000);\n"
      "}\n",
      groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 3u);
  EXPECT_EQ(R.Out[1], 3u);
  // min(-3, 2) is int -3; int -> ulong assignment sign-extends.
  EXPECT_EQ(R.Out[2], static_cast<uint64_t>(int64_t{-3}));
  EXPECT_EQ(R.Out[3], 9u);
  EXPECT_EQ(R.Out[4], 5u);
  EXPECT_EQ(R.Out[5], 127u);
  EXPECT_EQ(R.Out[6], 7u);
  EXPECT_EQ(R.Out[7], 1u);
}

TEST(VmTest, SafeMathGuards) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  out[0] = safe_div(7, 0);\n"
                     "  out[1] = safe_mod(9, 0);\n"
                     "  out[2] = safe_lshift(1, 33);\n"
                     "  out[3] = safe_unary_minus(5);\n"
                     "  out[4] = safe_clamp(5, 9, 1);\n"
                     "}\n",
                     groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 7u);
  EXPECT_EQ(R.Out[1], 9u);
  EXPECT_EQ(R.Out[2], 2u); // shift amount masked to 1
  EXPECT_EQ(R.Out[3], static_cast<uint64_t>(int64_t{-5}));
  EXPECT_EQ(R.Out[4], 5u); // min > max falls back to x
}

//===----------------------------------------------------------------------===//
// Traps, timeouts, divergence
//===----------------------------------------------------------------------===//

TEST(VmTest, DivisionByZeroTraps) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int z = 0;\n"
                     "  out[0] = 5 / z;\n"
                     "}\n",
                     single());
  EXPECT_EQ(R.LR.Status, LaunchStatus::Trap);
}

TEST(VmTest, OutOfBoundsTraps) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  out[1000000] = 1;\n"
                     "}\n",
                     single());
  EXPECT_EQ(R.LR.Status, LaunchStatus::Trap);
}

TEST(VmTest, NullDereferenceTraps) {
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  int *p = 0;\n"
                     "  out[0] = *p;\n"
                     "}\n",
                     single());
  EXPECT_EQ(R.LR.Status, LaunchStatus::Trap);
}

TEST(VmTest, InfiniteLoopTimesOut) {
  LaunchOptions Opts;
  Opts.StepBudget = 100000;
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  for (;;) { out[0] = out[0] + 1; }\n"
                     "}\n",
                     single(), CodegenOptions(), {}, &Opts);
  EXPECT_EQ(R.LR.Status, LaunchStatus::Timeout);
}

TEST(VmTest, BarrierDivergenceDetected) {
  // Half the group executes an extra barrier: undefined behaviour, and
  // our device flags it rather than hanging.
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  if (get_local_id(0) < 2) barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = 1;\n"
      "}\n",
      groupOf(4));
  EXPECT_EQ(R.LR.Status, LaunchStatus::BarrierDivergence);
}

TEST(VmTest, BarrierLoopTripCountDivergence) {
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  for (uint i = 0; i < get_local_id(0) + 1u; i++)\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = 1;\n"
      "}\n",
      groupOf(2));
  EXPECT_EQ(R.LR.Status, LaunchStatus::BarrierDivergence);
}

//===----------------------------------------------------------------------===//
// Communication: barriers, local memory, atomics
//===----------------------------------------------------------------------===//

TEST(VmTest, LocalMemoryNeighbourExchange) {
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  local uint A[8];\n"
      "  uint lid = (uint)get_local_id(0);\n"
      "  A[lid] = lid * 10u;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = A[(lid + 1u) % 8u];\n"
      "}\n",
      groupOf(8));
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  for (uint32_t I = 0; I != 8; ++I)
    EXPECT_EQ(R.Out[I], ((I + 1) % 8) * 10);
}

TEST(VmTest, AtomicReductionIsScheduleInvariant) {
  const std::string Src =
      "kernel void k(global ulong *out) {\n"
      "  local uint r[1];\n"
      "  if (get_local_id(0) == 0u) r[0] = 0u;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  atomic_add(&r[0], (uint)get_local_id(0) + 1u);\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = r[0];\n"
      "}\n";
  std::vector<uint64_t> First;
  for (uint64_t Seed = 0; Seed != 5; ++Seed) {
    LaunchOptions Opts;
    Opts.SchedulerSeed = Seed * 7919 + 1;
    auto R = runKernel(Src, groupOf(16), CodegenOptions(), {}, &Opts);
    ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
    if (Seed == 0)
      First = R.Out;
    else
      EXPECT_EQ(R.Out, First) << "seed " << Seed;
  }
  EXPECT_EQ(First[0], (16u * 17u) / 2);
}

TEST(VmTest, AtomicSectionWinnerVariesButSumIsStable) {
  // One thread (scheduling-dependent) enters the section; the special
  // value accumulates deterministically.
  const std::string Src =
      "kernel void k(global ulong *out) {\n"
      "  local uint c[1];\n"
      "  local uint s[1];\n"
      "  if (get_local_id(0) == 0u) { c[0] = 0u; s[0] = 0u; }\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  if (atomic_inc(&c[0]) == 3u) {\n"
      "    int v = 17;\n"
      "    atomic_add(&s[0], (uint)v);\n"
      "  }\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = s[0];\n"
      "}\n";
  for (uint64_t Seed = 0; Seed != 4; ++Seed) {
    LaunchOptions Opts;
    Opts.SchedulerSeed = Seed;
    auto R = runKernel(Src, groupOf(8), CodegenOptions(), {}, &Opts);
    ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
    for (uint64_t V : R.Out)
      EXPECT_EQ(V, 17u);
  }
}

TEST(VmTest, AtomicCmpxchg) {
  // One work-group of one thread, but a 4-slot out buffer via the
  // global size trick: launch 1 thread, index out[] directly.
  NDRange R1;
  R1.Global[0] = 4;
  R1.Local[0] = 4;
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  local uint c[1];\n"
                     "  if (get_local_id(0) == 0u) {\n"
                     "    c[0] = 5u;\n"
                     "    out[0] = atomic_cmpxchg(&c[0], 5u, 9u);\n"
                     "    out[1] = c[0];\n"
                     "    out[2] = atomic_cmpxchg(&c[0], 5u, 11u);\n"
                     "    out[3] = c[0];\n"
                     "  }\n"
                     "}\n",
                     R1);
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 5u);
  EXPECT_EQ(R.Out[1], 9u);
  EXPECT_EQ(R.Out[2], 9u);
  EXPECT_EQ(R.Out[3], 9u); // second exchange fails, value unchanged
}

TEST(VmTest, MultiGroupIsolation) {
  NDRange R3;
  R3.Global[0] = 12;
  R3.Local[0] = 4;
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  local uint acc[1];\n"
      "  if (get_local_id(0) == 0u) acc[0] = (uint)get_group_id(0);\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = acc[0];\n"
      "}\n",
      R3);
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  for (uint32_t I = 0; I != 12; ++I)
    EXPECT_EQ(R.Out[I], I / 4);
}

//===----------------------------------------------------------------------===//
// Race detection
//===----------------------------------------------------------------------===//

TEST(VmTest, RaceDetectorFlagsUnsyncLocalWrite) {
  LaunchOptions Opts;
  Opts.DetectRaces = true;
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  local uint A[1];\n"
                     "  A[0] = (uint)get_local_id(0);\n" // racy write
                     "  out[get_global_id(0)] = A[0];\n"
                     "}\n",
                     groupOf(4), CodegenOptions(), {}, &Opts);
  EXPECT_TRUE(R.LR.RaceFound) << "expected a data race report";
}

TEST(VmTest, RaceDetectorAcceptsBarrierSeparation) {
  LaunchOptions Opts;
  Opts.DetectRaces = true;
  auto R = runKernel(
      "kernel void k(global ulong *out) {\n"
      "  local uint A[4];\n"
      "  A[get_local_id(0)] = 1u;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = A[(get_local_id(0) + 1u) % 4u];\n"
      "}\n",
      groupOf(4), CodegenOptions(), {}, &Opts);
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_FALSE(R.LR.RaceFound) << R.LR.RaceMessage;
}

TEST(VmTest, RaceDetectorAcceptsAtomics) {
  LaunchOptions Opts;
  Opts.DetectRaces = true;
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  local uint c[1];\n"
                     "  if (get_local_id(0) == 0u) c[0] = 0u;\n"
                     "  barrier(CLK_LOCAL_MEM_FENCE);\n"
                     "  atomic_inc(&c[0]);\n"
                     "  barrier(CLK_LOCAL_MEM_FENCE);\n"
                     "  out[get_global_id(0)] = c[0];\n"
                     "}\n",
                     groupOf(4), CodegenOptions(), {}, &Opts);
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_FALSE(R.LR.RaceFound) << R.LR.RaceMessage;
}

TEST(VmTest, RaceDetectorFlagsCrossGroupConflict) {
  NDRange R2;
  R2.Global[0] = 8;
  R2.Local[0] = 4;
  LaunchOptions Opts;
  Opts.DetectRaces = true;
  auto R = runKernel("kernel void k(global ulong *out) {\n"
                     "  out[0] = get_global_id(0);\n" // all threads write
                     "}\n",
                     R2, CodegenOptions(), {}, &Opts);
  EXPECT_TRUE(R.LR.RaceFound);
}

//===----------------------------------------------------------------------===//
// Bug models behave as the paper reports
//===----------------------------------------------------------------------===//

namespace {

const char *Fig1aSource =
    "struct S { char a; short b; };\n"
    "kernel void k(global ulong *out) {\n"
    "  struct S s = { 1, 1 };\n"
    "  out[get_global_id(0)] = s.a + s.b;\n"
    "}\n";

const char *Fig2aSource =
    "struct S { short c; long d; };\n"
    "union U { uint a; struct S b; };\n"
    "struct T { union U u[1]; ulong x; ulong y; };\n"
    "kernel void k(global ulong *out, global int *in) {\n"
    "  struct T c;\n"
    "  struct T t = { {{1}}, in[get_global_id(0)], in[get_global_id(1)] };\n"
    "  c = t;\n"
    "  ulong total = 0;\n"
    "  for (int i = 0; i < 1; i++) total += c.u[i].a;\n"
    "  out[get_global_id(0)] = total;\n"
    "}\n";

const char *Fig2fSource =
    "kernel void k(global ulong *out) {\n"
    "  short x = 1; uint y;\n"
    "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
    "  out[get_global_id(0)] = y;\n"
    "}\n";

} // namespace

TEST(BugModelTest, Figure1aCorrectWithoutBug) {
  auto R = runKernel(Fig1aSource, single());
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], 2u);
}

TEST(BugModelTest, Figure1aWrongWithCharStructBug) {
  CodegenOptions CG;
  CG.Layout.CharStructInitBug = true;
  auto R = runKernel(Fig1aSource, single(), CG);
  ASSERT_TRUE(R.LR.ok());
  // The paper reports result 1 (expected 2) for configurations 5+, 6+,
  // 16+.
  EXPECT_EQ(R.Out[0], 1u);
}

TEST(BugModelTest, Figure2aCorrectWithoutBug) {
  Buffer In;
  In.Space = AddressSpace::Global;
  In.Bytes.assign(8, 0);
  auto R = runKernel(Fig2aSource, single(), CodegenOptions(), {In});
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  EXPECT_EQ(R.Out[0], 1u);
}

TEST(BugModelTest, Figure2aWrongWithUnionInitBug) {
  CodegenOptions CG;
  CG.Layout.UnionInitBug = true;
  Buffer In;
  In.Space = AddressSpace::Global;
  In.Bytes.assign(8, 0);
  auto R = runKernel(Fig2aSource, single(), CG, {In});
  ASSERT_TRUE(R.LR.ok()) << R.LR.Message;
  // The paper reports 0xffff0001 (expected 1) for 1-, 2-, 3-, 4-.
  EXPECT_EQ(R.Out[0], 0xffff0001ull);
}

TEST(BugModelTest, Figure2fCorrectWithoutBug) {
  auto R = runKernel(Fig2fSource, single());
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], 0xffffffffull);
}

TEST(BugModelTest, Figure2fWrongWithCommaBug) {
  CodegenOptions CG;
  CG.CommaDropsRhsBug = true;
  auto R = runKernel(Fig2fSource, single(), CG);
  ASSERT_TRUE(R.LR.ok());
  // The paper reports 0 (expected 0xffffffff) for configuration 19.
  EXPECT_EQ(R.Out[0], 0u);
}

TEST(BugModelTest, CharStructBugLeavesOtherStructsAlone) {
  CodegenOptions CG;
  CG.Layout.CharStructInitBug = true;
  auto R = runKernel("struct S { int a; short b; };\n"
                     "kernel void k(global ulong *out) {\n"
                     "  struct S s = { 1, 1 };\n"
                     "  out[get_global_id(0)] = s.a + s.b;\n"
                     "}\n",
                     single(), CG);
  ASSERT_TRUE(R.LR.ok());
  EXPECT_EQ(R.Out[0], 2u);
}

//===----------------------------------------------------------------------===//
// Layout engine
//===----------------------------------------------------------------------===//

TEST(LayoutTest, StandardStructLayout) {
  TypeContext T;
  RecordType *S = T.createRecord("S", false);
  S->addField({"a", T.charTy(), false});
  S->addField({"b", T.shortTy(), false});
  S->setComplete();
  LayoutEngine L;
  EXPECT_EQ(L.fieldOffset(S, 0), 0u);
  EXPECT_EQ(L.fieldOffset(S, 1), 2u);
  EXPECT_EQ(L.sizeOf(S), 4u);
  EXPECT_EQ(L.alignOf(S), 2u);
}

TEST(LayoutTest, UnionLayout) {
  TypeContext T;
  RecordType *U = T.createRecord("U", true);
  U->addField({"a", T.uintTy(), false});
  U->addField({"b", T.ulongTy(), false});
  U->setComplete();
  LayoutEngine L;
  EXPECT_EQ(L.sizeOf(U), 8u);
  EXPECT_EQ(L.fieldOffset(U, 0), 0u);
  EXPECT_EQ(L.fieldOffset(U, 1), 0u);
}

TEST(LayoutTest, VectorAlignment) {
  TypeContext T;
  LayoutEngine L;
  const Type *I4 = T.vector(T.intTy(), 4);
  EXPECT_EQ(L.sizeOf(I4), 16u);
  EXPECT_EQ(L.alignOf(I4), 16u);
  RecordType *S = T.createRecord("VS", false);
  S->addField({"c", T.charTy(), false});
  S->addField({"v", I4, false});
  S->setComplete();
  EXPECT_EQ(L.fieldOffset(S, 1), 16u);
  EXPECT_EQ(L.sizeOf(S), 32u);
}

TEST(LayoutTest, BuggedInitOffsetsArePacked) {
  TypeContext T;
  RecordType *S = T.createRecord("S", false);
  S->addField({"a", T.charTy(), false});
  S->addField({"b", T.shortTy(), false});
  S->setComplete();
  LayoutOptions LO;
  LO.CharStructInitBug = true;
  LayoutEngine L(LO);
  EXPECT_TRUE(L.charStructBugTriggers(S));
  EXPECT_EQ(L.initFieldOffset(S, 1), 1u);
  EXPECT_EQ(L.fieldOffset(S, 1), 2u); // reads stay padded
}
