//===- OptTest.cpp - Optimisation pass tests --------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Pass unit tests, the O0-vs-O2 differential self-test, and the
/// Figure 2(b)/2(c)/2(e) pass bug models.
///
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "opt/ConstEval.h"
#include "opt/Pass.h"
#include "vm/Codegen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

/// Parses, optimises with \p PO, compiles and runs over \p Range.
struct PipelineRun {
  LaunchResult LR;
  std::vector<uint64_t> Out;
  std::string OptimisedSource;
};

PipelineRun runPipeline(const std::string &Source, const PassOptions &PO,
                        NDRange Range,
                        const CodegenOptions &CG = CodegenOptions()) {
  ASTContext Ctx;
  DiagEngine Diags;
  EXPECT_TRUE(parseProgram(Source, Ctx, Diags)) << Diags.str();
  PassManager PM = buildPipeline(PO, Ctx);
  PM.run(Ctx);
  PipelineRun R;
  R.OptimisedSource = printProgram(Ctx.program(), Ctx.types());
  // The optimised program must still be semantically valid.
  DiagEngine PostDiags;
  EXPECT_TRUE(checkProgram(Ctx, PostDiags))
      << PostDiags.str() << "\n" << R.OptimisedSource;
  CodegenResult CR = compileToBytecode(Ctx, CG);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  if (!CR.Ok)
    return R;

  std::vector<Buffer> Buffers;
  Buffer Out;
  Out.Bytes.assign(Range.globalLinear() * 8, 0);
  Buffers.push_back(std::move(Out));
  std::vector<KernelArg> Args;
  for (size_t I = 0; I != CR.Module.kernel().Params.size(); ++I)
    Args.push_back(KernelArg::buffer(0));
  LaunchOptions Opts;
  Opts.Range = Range;
  R.LR = launchKernel(CR.Module, Buffers, Args, Opts);
  for (uint64_t I = 0; I != Range.globalLinear(); ++I)
    R.Out.push_back(Buffers[0].readScalar(I * 8, 8));
  return R;
}

NDRange lane(uint32_t N = 1) {
  NDRange R;
  R.Global[0] = N;
  R.Local[0] = N;
  return R;
}

/// Optimises a program and returns its printed source (for pattern
/// inspection).
std::string optimise(const std::string &Source,
                     const PassOptions &PO = PassOptions::o2()) {
  ASTContext Ctx;
  DiagEngine Diags;
  EXPECT_TRUE(parseProgram(Source, Ctx, Diags)) << Diags.str();
  PassManager PM = buildPipeline(PO, Ctx);
  PM.run(Ctx);
  return printProgram(Ctx.program(), Ctx.types());
}

} // namespace

//===----------------------------------------------------------------------===//
// ConstEval
//===----------------------------------------------------------------------===//

TEST(ConstEvalTest, FoldsScalarArithmetic) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  Expr *E = Ctx.makeExpr<BinaryExpr>(BinOp::Mul, Ctx.intLit(6),
                                     Ctx.intLit(7), T.intTy());
  auto V = evalConstExpr(E);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Lanes[0], 42u);
}

TEST(ConstEvalTest, RefusesDivisionByZero) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  Expr *E = Ctx.makeExpr<BinaryExpr>(BinOp::Div, Ctx.intLit(6),
                                     Ctx.intLit(0), T.intTy());
  EXPECT_FALSE(evalConstExpr(E).has_value());
}

TEST(ConstEvalTest, ShortCircuitIgnoresNonConstRhs) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  VarDecl *X = Ctx.makeVar("x", T.intTy(), AddressSpace::Private);
  Expr *E = Ctx.makeExpr<BinaryExpr>(BinOp::LAnd, Ctx.intLit(0),
                                     Ctx.ref(X), T.boolTy());
  auto V = evalConstExpr(E);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Lanes[0], 0u);
}

//===----------------------------------------------------------------------===//
// Individual passes
//===----------------------------------------------------------------------===//

TEST(PassTest, ConstFoldFoldsExpressions) {
  std::string Out = optimise("kernel void k(global ulong *out) {\n"
                             "  out[0] = 2 + 3 * 4 - (10 >> 1);\n"
                             "}\n");
  EXPECT_NE(Out.find("out[0] = 9"), std::string::npos) << Out;
}

TEST(PassTest, SimplifyRemovesConstIf) {
  std::string Out = optimise("kernel void k(global ulong *out) {\n"
                             "  if (0) { out[0] = 1; } else { out[0] = 2; }\n"
                             "  if (1) out[1] = 3;\n"
                             "}\n");
  EXPECT_EQ(Out.find("out[0] = 1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("out[0] = 2"), std::string::npos) << Out;
  EXPECT_NE(Out.find("out[1] = 3"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("if"), std::string::npos) << Out;
}

TEST(PassTest, DCERemovesUnusedLocals) {
  std::string Out = optimise("kernel void k(global ulong *out) {\n"
                             "  int unused = 42;\n"
                             "  int used = 7;\n"
                             "  out[0] = used;\n"
                             "}\n");
  EXPECT_EQ(Out.find("unused"), std::string::npos) << Out;
}

TEST(PassTest, DCEKeepsVolatileAndAddressTaken) {
  std::string Out = optimise("void f(int *p) { *p = 1; }\n"
                             "kernel void k(global ulong *out) {\n"
                             "  volatile int v = 1;\n"
                             "  int t = 0;\n"
                             "  f(&t);\n"
                             "  out[0] = 1;\n"
                             "}\n");
  EXPECT_NE(Out.find("volatile int v"), std::string::npos) << Out;
  EXPECT_NE(Out.find("f(&t)"), std::string::npos) << Out;
}

TEST(PassTest, DCERemovesUnreachableAfterReturn) {
  std::string Out = optimise("int f() { return 1; int x = 2; return x; }\n"
                             "kernel void k(global ulong *out) {\n"
                             "  out[0] = f();\n"
                             "}\n");
  EXPECT_EQ(Out.find("x = 2"), std::string::npos) << Out;
}

TEST(PassTest, CopyPropFeedsConstFold) {
  std::string Out = optimise("kernel void k(global ulong *out) {\n"
                             "  int a = 5;\n"
                             "  int b = a + 3;\n"
                             "  out[0] = b * 2;\n"
                             "}\n");
  EXPECT_NE(Out.find("out[0] = 16"), std::string::npos) << Out;
}

TEST(PassTest, EmptyEmiShapedBlockIsRemoved) {
  // A pruned-to-empty EMI block over a non-volatile buffer read is
  // removable; the load is pure.
  std::string Out =
      optimise("kernel void k(global ulong *out, global int *dead) {\n"
               "  if (dead[3] < dead[1]) { }\n"
               "  out[0] = 1;\n"
               "}\n");
  EXPECT_EQ(Out.find("dead[3]"), std::string::npos) << Out;
}

TEST(PassTest, PipelinePreservesBarriers) {
  std::string Out = optimise("kernel void k(global ulong *out) {\n"
                             "  barrier(CLK_LOCAL_MEM_FENCE);\n"
                             "  out[0] = 1;\n"
                             "}\n");
  EXPECT_NE(Out.find("barrier(CLK_LOCAL_MEM_FENCE)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// O0 vs O2 differential self-test
//===----------------------------------------------------------------------===//

TEST(PassTest, OptimisedMatchesUnoptimised) {
  const char *Kernels[] = {
      // Arithmetic over locals and loops.
      "kernel void k(global ulong *out) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < 16; i++) { int t = i * 3; acc += t - 1; }\n"
      "  out[get_global_id(0)] = acc + get_global_id(0);\n"
      "}\n",
      // Structs, copies, conditionals.
      "typedef struct { int a; short b; char c[6]; } S;\n"
      "int mix(S *s) { return s->a + s->b + s->c[3]; }\n"
      "kernel void k(global ulong *out) {\n"
      "  S s = { 100, 20, { 1, 2, 3, 4, 5, 6 } };\n"
      "  S t;\n"
      "  t = s;\n"
      "  t.a = t.a > 50 ? t.a - 50 : t.a;\n"
      "  out[get_global_id(0)] = mix(&t);\n"
      "}\n",
      // Vectors and builtins.
      "kernel void k(global ulong *out) {\n"
      "  uint4 v = (uint4)(1, 2, 3, 4);\n"
      "  uint4 w = rotate(v, (uint4)(1, 2, 3, 4));\n"
      "  v = clamp(w, (uint4)(0, 0, 0, 0), (uint4)(64, 64, 64, 64));\n"
      "  out[get_global_id(0)] = v.x + v.y + v.z + v.w;\n"
      "}\n",
      // Barriers and local memory.
      "kernel void k(global ulong *out) {\n"
      "  local uint A[4];\n"
      "  A[get_local_id(0)] = (uint)get_local_id(0) * 5u;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = A[3u - get_local_id(0)];\n"
      "}\n",
      // Comma, increments, short-circuit.
      "kernel void k(global ulong *out) {\n"
      "  int x = 1, y = 0;\n"
      "  for (int i = 0; i < 5; i++, y += 2) x = x * 2;\n"
      "  int z = (x > 10 && y > 5) ? (x , y) : -1;\n"
      "  out[get_global_id(0)] = x + y + z;\n"
      "}\n",
  };
  for (const char *Src : Kernels) {
    auto O0 = runPipeline(Src, PassOptions::o0(), lane(4));
    auto O2 = runPipeline(Src, PassOptions::o2(), lane(4));
    ASSERT_TRUE(O0.LR.ok()) << O0.LR.Message << "\n" << Src;
    ASSERT_TRUE(O2.LR.ok()) << O2.LR.Message << "\n"
                            << O2.OptimisedSource;
    EXPECT_EQ(O0.Out, O2.Out) << "pipeline changed semantics for:\n"
                              << Src << "\noptimised:\n"
                              << O2.OptimisedSource;
  }
}

//===----------------------------------------------------------------------===//
// Pass bug models
//===----------------------------------------------------------------------===//

TEST(PassBugTest, RotateFoldBugReproducesFigure2b) {
  const std::string Src =
      "kernel void k(global ulong *out) {\n"
      "  out[get_global_id(0)] = rotate((uint2)(1, 1), (uint2)(0, 0)).x;\n"
      "}\n";
  auto Good = runPipeline(Src, PassOptions::o2(), lane());
  ASSERT_TRUE(Good.LR.ok());
  EXPECT_EQ(Good.Out[0], 1u);

  PassOptions Buggy = PassOptions::o2();
  Buggy.RotateFoldBug = true;
  auto Bad = runPipeline(Src, Buggy, lane());
  ASSERT_TRUE(Bad.LR.ok());
  // The paper reports 0xffffffff (expected 1) for configuration 14.
  EXPECT_EQ(Bad.Out[0], 0xffffffffull);
}

TEST(PassBugTest, CmpMinusOneBugReproducesFigure2e) {
  const std::string Src =
      "void f(int *p) {\n"
      "  if ((((((*p - get_group_id(0)) != 1u) >> *p) < 2) >= *p)) {\n"
      "    *p = 1;\n"
      "  }\n"
      "}\n"
      "kernel void k(global ulong *out) {\n"
      "  int x = 0;\n"
      "  f(&x);\n"
      "  out[get_global_id(0)] = x;\n"
      "}\n";
  auto Good = runPipeline(Src, PassOptions::o2(), lane());
  ASSERT_TRUE(Good.LR.ok());
  EXPECT_EQ(Good.Out[0], 1u);

  PassOptions Buggy = PassOptions::o2();
  Buggy.CmpMinusOneBug = true;
  auto Bad = runPipeline(Src, Buggy, lane());
  ASSERT_TRUE(Bad.LR.ok());
  // The paper reports 0 (expected 1) for configuration 9+.
  EXPECT_EQ(Bad.Out[0], 0u);
}

TEST(PassBugTest, BarrierCallRetvalBugReproducesFigure2c) {
  const std::string Src =
      "int f();\n"
      "void g(int *p) { barrier(CLK_LOCAL_MEM_FENCE); *p = f(); }\n"
      "void h(int *p) { g(p); }\n"
      "int f() { barrier(CLK_LOCAL_MEM_FENCE); return 1; }\n"
      "kernel void k(global ulong *out) {\n"
      "  int x = 0;\n"
      "  h(&x);\n"
      "  out[get_global_id(0)] = x;\n"
      "}\n";
  auto Good = runPipeline(Src, PassOptions::o0(), lane(2));
  ASSERT_TRUE(Good.LR.ok()) << Good.LR.Message;
  EXPECT_EQ(Good.Out[0], 1u);
  EXPECT_EQ(Good.Out[1], 1u);

  PassOptions Buggy = PassOptions::o0();
  Buggy.BarrierCallRetvalBug = true;
  auto Bad = runPipeline(Src, Buggy, lane(2));
  ASSERT_TRUE(Bad.LR.ok()) << Bad.LR.Message;
  // The paper reports [1,0] (expected [1,1]) for 12-/13-; our model
  // yields a uniformly wrong result of the same class.
  EXPECT_NE(Bad.Out[0], 1u);
}

TEST(PassBugTest, ShiftSafeFoldBugDiverges) {
  const std::string Src = "kernel void k(global ulong *out) {\n"
                          "  out[get_global_id(0)] = safe_lshift(1, 33);\n"
                          "}\n";
  auto Good = runPipeline(Src, PassOptions::o2(), lane());
  ASSERT_TRUE(Good.LR.ok());
  EXPECT_EQ(Good.Out[0], 2u); // runtime masks the amount: 1 << 1

  PassOptions Buggy = PassOptions::o2();
  Buggy.ShiftSafeFoldBug = true;
  auto Bad = runPipeline(Src, Buggy, lane());
  ASSERT_TRUE(Bad.LR.ok());
  EXPECT_EQ(Bad.Out[0], 0u);
}

TEST(PassBugTest, BugModelsAreInvisibleWhenPatternAbsent) {
  // A kernel with none of the trigger patterns must be identical under
  // every buggy pipeline.
  const std::string Src = "kernel void k(global ulong *out) {\n"
                          "  int acc = 3;\n"
                          "  for (int i = 0; i < 7; i++) acc = acc * 2 + i;\n"
                          "  out[get_global_id(0)] = acc;\n"
                          "}\n";
  auto Ref = runPipeline(Src, PassOptions::o2(), lane());
  for (int BugIdx = 0; BugIdx != 4; ++BugIdx) {
    PassOptions PO = PassOptions::o2();
    PO.RotateFoldBug = BugIdx == 0;
    PO.ShiftSafeFoldBug = BugIdx == 1;
    PO.CmpMinusOneBug = BugIdx == 2;
    PO.BarrierCallRetvalBug = BugIdx == 3;
    auto R = runPipeline(Src, PO, lane());
    ASSERT_TRUE(R.LR.ok());
    EXPECT_EQ(R.Out, Ref.Out) << "bug model " << BugIdx;
  }
}
