//===- CorpusTest.cpp - Mini benchmark suite tests ----------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "corpus/Benchmarks.h"

#include <gtest/gtest.h>

using namespace clfuzz;

TEST(CorpusTest, SuiteMatchesTable2Inventory) {
  std::vector<Benchmark> Suite = buildBenchmarkSuite();
  ASSERT_EQ(Suite.size(), 10u);
  unsigned Parboil = 0, Rodinia = 0;
  for (const Benchmark &B : Suite) {
    if (B.Suite == "Parboil")
      ++Parboil;
    else if (B.Suite == "Rodinia")
      ++Rodinia;
    EXPECT_GE(B.linesOfCode(), 10u) << B.Name;
  }
  EXPECT_EQ(Parboil, 6u);
  EXPECT_EQ(Rodinia, 4u);
}

TEST(CorpusTest, RacyPairMatchesPaper) {
  // The paper found races in Parboil spmv and Rodinia myocyte (§2.4).
  std::vector<Benchmark> Suite = buildBenchmarkSuite();
  std::vector<std::string> Racy;
  for (const Benchmark &B : Suite)
    if (B.HasPlantedRace)
      Racy.push_back(B.Name);
  ASSERT_EQ(Racy.size(), 2u);
  EXPECT_EQ(Racy[0], "spmv");
  EXPECT_EQ(Racy[1], "myocyte");
  EXPECT_EQ(emiBenchmarkSuite().size(), 8u);
}

TEST(CorpusTest, AllBenchmarksRunOnReference) {
  for (const Benchmark &B : buildBenchmarkSuite()) {
    RunOutcome O0 = runTestOnReference(B.Test, false);
    RunOutcome O2 = runTestOnReference(B.Test, true);
    ASSERT_TRUE(O0.ok()) << B.Name << ": " << O0.Message;
    ASSERT_TRUE(O2.ok()) << B.Name << ": " << O2.Message;
    EXPECT_EQ(O0.OutputHash, O2.OutputHash)
        << B.Name << ": optimisation changed the result";
  }
}

TEST(CorpusTest, RaceDetectorConfirmsPaperFindings) {
  RunSettings S;
  S.DetectRaces = true;
  for (const Benchmark &B : buildBenchmarkSuite()) {
    RunOutcome O = runTestOnReference(B.Test, false, S);
    ASSERT_TRUE(O.ok()) << B.Name << ": " << O.Message;
    if (B.HasPlantedRace)
      EXPECT_TRUE(O.RaceFound)
          << B.Name << " should contain the paper's data race";
    else
      EXPECT_FALSE(O.RaceFound)
          << B.Name << " raced unexpectedly: " << O.RaceMessage;
  }
}

TEST(CorpusTest, MyocyteRaceIsOrderDependent) {
  // The myocyte race genuinely changes results across schedules - the
  // property that derailed the paper's reduction effort (§2.4).
  std::vector<Benchmark> Suite = buildBenchmarkSuite();
  const Benchmark *Myocyte = nullptr;
  for (const Benchmark &B : Suite)
    if (B.Name == "myocyte")
      Myocyte = &B;
  ASSERT_NE(Myocyte, nullptr);

  std::set<uint64_t> Hashes;
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    RunSettings S;
    S.SchedulerSeed = Seed;
    RunOutcome O = runTestOnReference(Myocyte->Test, false, S);
    ASSERT_TRUE(O.ok());
    Hashes.insert(O.OutputHash);
  }
  EXPECT_GT(Hashes.size(), 1u)
      << "myocyte's race should be schedule-visible";
}

TEST(CorpusTest, DeterministicBenchmarksAreScheduleInvariant) {
  for (const Benchmark &B : buildBenchmarkSuite()) {
    if (B.HasPlantedRace)
      continue;
    RunSettings S;
    S.SchedulerSeed = 3;
    RunOutcome A = runTestOnReference(B.Test, false, S);
    S.SchedulerSeed = 12345;
    RunOutcome Bo = runTestOnReference(B.Test, false, S);
    ASSERT_TRUE(A.ok() && Bo.ok()) << B.Name;
    EXPECT_EQ(A.OutputHash, Bo.OutputHash) << B.Name;
  }
}

TEST(CorpusTest, BenchmarksProduceNonTrivialOutput) {
  for (const Benchmark &B : buildBenchmarkSuite()) {
    RunOutcome O = runTestOnReference(B.Test, false);
    ASSERT_TRUE(O.ok()) << B.Name;
    bool AnyNonZero = false;
    for (uint64_t W : O.OutputHead)
      AnyNonZero |= W != 0;
    EXPECT_TRUE(AnyNonZero) << B.Name << " wrote only zeros";
  }
}
