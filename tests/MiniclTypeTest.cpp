//===- MiniclTypeTest.cpp - Tests for the MiniCL type system --------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/TypeRules.h"

#include <gtest/gtest.h>

using namespace clfuzz;

TEST(TypeTest, ScalarWidths) {
  TypeContext T;
  EXPECT_EQ(T.charTy()->bitWidth(), 8u);
  EXPECT_EQ(T.ushortTy()->bitWidth(), 16u);
  EXPECT_EQ(T.intTy()->bitWidth(), 32u);
  EXPECT_EQ(T.ulongTy()->bitWidth(), 64u);
  EXPECT_EQ(T.sizeTy()->bitWidth(), 64u);
  EXPECT_TRUE(T.charTy()->isSigned());
  EXPECT_FALSE(T.ucharTy()->isSigned());
  EXPECT_FALSE(T.sizeTy()->isSigned());
}

TEST(TypeTest, VectorInterning) {
  TypeContext T;
  const VectorType *A = T.vector(T.intTy(), 4);
  const VectorType *B = T.vector(T.intTy(), 4);
  const VectorType *C = T.vector(T.uintTy(), 4);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A->str(), "int4");
}

TEST(TypeTest, ArrayAndPointerInterning) {
  TypeContext T;
  EXPECT_EQ(T.array(T.intTy(), 10), T.array(T.intTy(), 10));
  EXPECT_NE(T.array(T.intTy(), 10), T.array(T.intTy(), 11));
  EXPECT_EQ(T.pointer(T.intTy(), AddressSpace::Global),
            T.pointer(T.intTy(), AddressSpace::Global));
  EXPECT_NE(T.pointer(T.intTy(), AddressSpace::Global),
            T.pointer(T.intTy(), AddressSpace::Local));
  EXPECT_NE(T.pointer(T.intTy(), AddressSpace::Global, true),
            T.pointer(T.intTy(), AddressSpace::Global, false));
}

TEST(TypeTest, RecordsAreNominal) {
  TypeContext T;
  RecordType *A = T.createRecord("S", false);
  RecordType *B = T.createRecord("S2", false);
  A->addField({"a", T.intTy(), false});
  B->addField({"a", T.intTy(), false});
  A->setComplete();
  B->setComplete();
  EXPECT_NE(static_cast<const Type *>(A), static_cast<const Type *>(B));
  EXPECT_EQ(A->fieldIndex("a"), 0);
  EXPECT_EQ(A->fieldIndex("b"), -1);
  EXPECT_EQ(T.findRecord("S"), A);
}

TEST(TypeTest, Spellings) {
  TypeContext T;
  EXPECT_EQ(T.pointer(T.ulongTy(), AddressSpace::Global)->str(),
            "global ulong *");
  EXPECT_EQ(T.array(T.array(T.charTy(), 3), 2)->str(), "char[3][2]");
}

TEST(TypeRulesTest, Promotion) {
  TypeContext T;
  EXPECT_EQ(promote(T, T.charTy()), T.intTy());
  EXPECT_EQ(promote(T, T.ushortTy()), T.intTy());
  EXPECT_EQ(promote(T, T.boolTy()), T.intTy());
  EXPECT_EQ(promote(T, T.uintTy()), T.uintTy());
  EXPECT_EQ(promote(T, T.longTy()), T.longTy());
}

TEST(TypeRulesTest, UsualArithmeticConversions) {
  TypeContext T;
  // Narrow types meet at int.
  EXPECT_EQ(usualArithmeticConversions(T, T.charTy(), T.ushortTy()),
            T.intTy());
  // Mixed signedness at equal rank: unsigned wins.
  EXPECT_EQ(usualArithmeticConversions(T, T.intTy(), T.uintTy()),
            T.uintTy());
  // Wider signed absorbs narrower unsigned.
  EXPECT_EQ(usualArithmeticConversions(T, T.longTy(), T.uintTy()),
            T.longTy());
  // size_t behaves as ulong.
  EXPECT_EQ(usualArithmeticConversions(T, T.intTy(), T.sizeTy()),
            T.ulongTy());
}

TEST(TypeRulesTest, ComparisonResultVector) {
  TypeContext T;
  EXPECT_EQ(comparisonResultVector(T, T.vector(T.uintTy(), 4)),
            T.vector(T.intTy(), 4));
  EXPECT_EQ(comparisonResultVector(T, T.vector(T.ucharTy(), 8)),
            T.vector(T.charTy(), 8));
  EXPECT_EQ(comparisonResultVector(T, T.vector(T.ulongTy(), 2)),
            T.vector(T.longTy(), 2));
}

TEST(TypeRulesTest, BinaryScalarNormalisation) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  Expr *C = Ctx.intLit(1, T.charTy());
  Expr *U = Ctx.intLit(2, T.uintTy());
  TypedResult R = buildBinary(Ctx, BinOp::Add, C, U);
  ASSERT_NE(R.E, nullptr);
  EXPECT_EQ(R.E->getType(), T.uintTy());
  const auto *B = cast<BinaryExpr>(R.E);
  EXPECT_EQ(B->getLHS()->getType(), T.uintTy());
  EXPECT_EQ(B->getRHS()->getType(), T.uintTy());
}

TEST(TypeRulesTest, VectorMixingRules) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  const VectorType *I4 = T.vector(T.intTy(), 4);
  const VectorType *U4 = T.vector(T.uintTy(), 4);
  VarDecl *A = Ctx.makeVar("a", I4, AddressSpace::Private);
  VarDecl *B = Ctx.makeVar("b", U4, AddressSpace::Private);

  // int4 + uint4 must be rejected: no implicit vector conversion.
  TypedResult Bad = buildBinary(Ctx, BinOp::Add, Ctx.ref(A), Ctx.ref(B));
  EXPECT_EQ(Bad.E, nullptr);

  // int4 + scalar broadcasts.
  TypedResult Mixed =
      buildBinary(Ctx, BinOp::Add, Ctx.ref(A), Ctx.intLit(3));
  ASSERT_NE(Mixed.E, nullptr);
  EXPECT_EQ(Mixed.E->getType(), I4);

  // Comparison yields the signed vector form.
  TypedResult Cmp = buildBinary(Ctx, BinOp::Lt, Ctx.ref(B), Ctx.ref(B));
  ASSERT_NE(Cmp.E, nullptr);
  EXPECT_EQ(Cmp.E->getType(), I4);
}

TEST(TypeRulesTest, ShiftKeepsLhsType) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  TypedResult R = buildBinary(Ctx, BinOp::Shl,
                              Ctx.intLit(1, T.ulongTy()), Ctx.intLit(3));
  ASSERT_NE(R.E, nullptr);
  EXPECT_EQ(R.E->getType(), T.ulongTy());
}

TEST(TypeRulesTest, AssignRequiresLValue) {
  ASTContext Ctx;
  TypedResult R = buildAssign(Ctx, AssignOp::Assign, Ctx.intLit(1),
                              Ctx.intLit(2));
  EXPECT_EQ(R.E, nullptr);
}

TEST(TypeRulesTest, NullPointerConstantConversion) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  const Type *PtrTy = T.pointer(T.intTy(), AddressSpace::Private);
  Expr *Null = convertTo(Ctx, Ctx.intLit(0), PtrTy);
  EXPECT_NE(Null, nullptr);
  Expr *NotNull = convertTo(Ctx, Ctx.intLit(1), PtrTy);
  EXPECT_EQ(NotNull, nullptr);
}

TEST(TypeRulesTest, AbsReturnsUnsigned) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  TypedResult R = buildBuiltinCall(Ctx, Builtin::Abs,
                                   {Ctx.intLit(-5, T.intTy())});
  ASSERT_NE(R.E, nullptr);
  EXPECT_EQ(R.E->getType(), T.uintTy());
}

TEST(TypeRulesTest, AtomicRequiresSharedPointer) {
  ASTContext Ctx;
  TypeContext &T = Ctx.types();
  VarDecl *P = Ctx.makeVar(
      "p", T.pointer(T.uintTy(), AddressSpace::Private), AddressSpace::Private);
  TypedResult R =
      buildBuiltinCall(Ctx, Builtin::AtomicInc, {Ctx.ref(P)});
  EXPECT_EQ(R.E, nullptr);

  VarDecl *Q = Ctx.makeVar(
      "q", T.pointer(T.uintTy(), AddressSpace::Local), AddressSpace::Private);
  TypedResult R2 =
      buildBuiltinCall(Ctx, Builtin::AtomicInc, {Ctx.ref(Q)});
  ASSERT_NE(R2.E, nullptr);
  EXPECT_EQ(R2.E->getType(), T.uintTy());
}
