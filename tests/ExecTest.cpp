//===- ExecTest.cpp - ExecutionEngine tests ------------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The engine's contract is that parallel execution is unobservable:
// every campaign result must be bit-identical to the serial path for
// any worker count, because results aggregate by submission index and
// jobs share no mutable state. These tests pin that contract for the
// raw engine, for all three campaign drivers (Table 1/4/5 cells), and
// for the reducer's speculative candidate evaluation.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionEngine.h"
#include "device/DeviceConfig.h"
#include "oracle/Campaign.h"
#include "oracle/Reducer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace clfuzz;

namespace {

std::vector<DeviceConfig> smallZoo() {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo;
  for (int Id : {1, 12, 14, 19})
    Zoo.push_back(configById(Registry, Id));
  return Zoo;
}

CampaignSettings smallCampaign(unsigned Threads) {
  CampaignSettings S;
  S.KernelsPerMode = 4;
  S.Exec.Threads = Threads;
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 128;
  return S;
}

bool sameTables(const std::vector<ModeTable> &A,
                const std::vector<ModeTable> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    if (A[I].Mode != B[I].Mode || A[I].NumTests != B[I].NumTests)
      return false;
    if (A[I].Cells.size() != B[I].Cells.size())
      return false;
    auto ItA = A[I].Cells.begin(), ItB = B[I].Cells.begin();
    for (; ItA != A[I].Cells.end(); ++ItA, ++ItB) {
      if (ItA->first.ConfigId != ItB->first.ConfigId ||
          ItA->first.Opt != ItB->first.Opt)
        return false;
      const OutcomeCounts &CA = ItA->second, &CB = ItB->second;
      if (CA.W != CB.W || CA.BF != CB.BF || CA.C != CB.C ||
          CA.TO != CB.TO || CA.Pass != CB.Pass)
        return false;
    }
  }
  return true;
}

} // namespace

TEST(ExecOptionsTest, PolicyAndResolution) {
  EXPECT_EQ(ExecOptions::serial().policy(), ExecPolicy::Serial);
  EXPECT_EQ(ExecOptions::withThreads(8).policy(), ExecPolicy::Parallel);
  EXPECT_EQ(ExecOptions::withThreads(8).resolvedThreads(), 8u);
  // 0 = auto; must resolve to something usable.
  EXPECT_GE(ExecOptions::withThreads(0).resolvedThreads(), 1u);
}

TEST(ExecutionEngineTest, ForEachIndexCoversEveryIndexOnce) {
  // Stress: far more jobs than workers, over repeated batches.
  ExecutionEngine Engine(ExecOptions::withThreads(8));
  EXPECT_EQ(Engine.threadCount(), 8u);
  for (int Round = 0; Round != 3; ++Round) {
    const size_t N = 500;
    std::vector<std::atomic<unsigned>> Hits(N);
    Engine.forEachIndex(N, [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
  }
}

TEST(ExecutionEngineTest, ChunkedClaimingCoversEveryIndexOnce) {
  // Cheap batches claim several indices per lock acquisition; coverage
  // and results must be identical to single-index claiming.
  ExecutionEngine Engine(ExecOptions::withThreads(4));
  for (unsigned Chunk : {1u, 2u, 8u, 64u}) {
    const size_t N = 333; // deliberately not a multiple of any chunk
    std::vector<std::atomic<unsigned>> Hits(N);
    Engine.forEachIndex(N, [&](size_t I) { Hits[I].fetch_add(1); },
                        Chunk);
    for (size_t I = 0; I != N; ++I)
      EXPECT_EQ(Hits[I].load(), 1u)
          << "chunk " << Chunk << " index " << I;
  }
}

TEST(ExecutionEngineTest, ChunkedClaimingPropagatesExceptions) {
  ExecutionEngine Engine(ExecOptions::withThreads(4));
  EXPECT_THROW(Engine.forEachIndex(
                   100,
                   [&](size_t I) {
                     if (I == 41)
                       throw std::runtime_error("boom");
                   },
                   ExecutionEngine::CheapClaimChunk),
               std::runtime_error);
  // The pool must still be usable with chunked claiming afterwards.
  std::atomic<size_t> Sum{0};
  Engine.forEachIndex(10, [&](size_t I) { Sum += I; },
                      ExecutionEngine::CheapClaimChunk);
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ExecutionEngineTest, ResultsKeyedBySubmissionIndex) {
  ExecutionEngine Engine(ExecOptions::withThreads(4));
  const size_t N = 300;
  std::vector<uint64_t> Out(N);
  Engine.forEachIndex(N, [&](size_t I) { Out[I] = I * I + 7; });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Out[I], I * I + 7);
}

TEST(ExecutionEngineTest, PropagatesJobExceptions) {
  ExecutionEngine Engine(ExecOptions::withThreads(4));
  EXPECT_THROW(
      Engine.forEachIndex(64,
                          [&](size_t I) {
                            if (I == 13)
                              throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  // The pool must still be usable after a throwing batch.
  std::atomic<size_t> Sum{0};
  Engine.forEachIndex(10, [&](size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ExecutionEngineTest, RunBatchMatchesDirectDriverCalls) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Mode = GenMode::Barrier;
  GO.Seed = 4242;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  std::vector<ExecJob> Jobs;
  std::vector<RunOutcome> Expected;
  for (const DeviceConfig &C : Zoo)
    for (bool Opt : {false, true}) {
      Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
      Expected.push_back(runTestOnConfig(T, C, Opt));
    }
  Jobs.push_back(ExecJob::onReference(T, true, RunSettings()));
  Expected.push_back(runTestOnReference(T, true));

  ExecutionEngine Engine(ExecOptions::withThreads(3));
  std::vector<RunOutcome> Got = Engine.runBatch(Jobs);
  ASSERT_EQ(Got.size(), Expected.size());
  for (size_t I = 0; I != Got.size(); ++I) {
    EXPECT_EQ(Got[I].Status, Expected[I].Status) << "job " << I;
    EXPECT_EQ(Got[I].OutputHash, Expected[I].OutputHash) << "job " << I;
  }
}

TEST(ExecDeterminismTest, DifferentialCampaignThreadCountInvariant) {
  // Same seed => identical Table 4 cells for 1, 2 and 8 workers.
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<GenMode> Modes = {GenMode::Barrier, GenMode::All};

  std::vector<ModeTable> Serial =
      runDifferentialCampaign(Zoo, Modes, smallCampaign(1));
  ASSERT_FALSE(Serial.empty());
  for (unsigned Threads : {2u, 8u}) {
    std::vector<ModeTable> Parallel =
        runDifferentialCampaign(Zoo, Modes, smallCampaign(Threads));
    EXPECT_TRUE(sameTables(Serial, Parallel))
        << "thread count " << Threads
        << " changed the campaign result";
  }
}

TEST(ExecDeterminismTest, ClassificationThreadCountInvariant) {
  // Same seed => identical Table 1 rows for 1, 2 and 8 workers.
  std::vector<DeviceConfig> Zoo = smallZoo();
  CampaignSettings S = smallCampaign(1);
  S.KernelsPerMode = 2;
  std::vector<ReliabilityRow> Serial = classifyConfigurations(Zoo, S);
  for (unsigned Threads : {2u, 8u}) {
    S.Exec.Threads = Threads;
    std::vector<ReliabilityRow> Parallel = classifyConfigurations(Zoo, S);
    ASSERT_EQ(Serial.size(), Parallel.size());
    for (size_t I = 0; I != Serial.size(); ++I) {
      EXPECT_EQ(Serial[I].ConfigId, Parallel[I].ConfigId);
      EXPECT_EQ(Serial[I].AboveThreshold, Parallel[I].AboveThreshold);
      EXPECT_EQ(Serial[I].Counts.W, Parallel[I].Counts.W);
      EXPECT_EQ(Serial[I].Counts.BF, Parallel[I].Counts.BF);
      EXPECT_EQ(Serial[I].Counts.C, Parallel[I].Counts.C);
      EXPECT_EQ(Serial[I].Counts.TO, Parallel[I].Counts.TO);
      EXPECT_EQ(Serial[I].Counts.Pass, Parallel[I].Counts.Pass);
    }
  }
}

TEST(ExecDeterminismTest, EmiCampaignThreadCountInvariant) {
  // Same seed => identical Table 5 columns for 1, 2 and 8 workers.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo = {configById(Registry, 12),
                                   configById(Registry, 19)};
  EmiCampaignSettings S;
  S.NumBases = 2;
  S.Base.BaseGen.MinThreads = 48;
  S.Base.BaseGen.MaxThreads = 96;

  S.Base.Exec.Threads = 1;
  unsigned SerialUsable = 0;
  std::vector<EmiCampaignColumn> Serial =
      runEmiCampaign(Zoo, S, SerialUsable);

  for (unsigned Threads : {2u, 8u}) {
    S.Base.Exec.Threads = Threads;
    unsigned Usable = 0;
    std::vector<EmiCampaignColumn> Parallel =
        runEmiCampaign(Zoo, S, Usable);
    EXPECT_EQ(SerialUsable, Usable);
    ASSERT_EQ(Serial.size(), Parallel.size());
    for (size_t I = 0; I != Serial.size(); ++I) {
      EXPECT_EQ(Serial[I].Key.ConfigId, Parallel[I].Key.ConfigId);
      EXPECT_EQ(Serial[I].Key.Opt, Parallel[I].Key.Opt);
      EXPECT_EQ(Serial[I].BaseFails, Parallel[I].BaseFails);
      EXPECT_EQ(Serial[I].Wrong, Parallel[I].Wrong);
      EXPECT_EQ(Serial[I].InducedBF, Parallel[I].InducedBF);
      EXPECT_EQ(Serial[I].InducedCrash, Parallel[I].InducedCrash);
      EXPECT_EQ(Serial[I].InducedTimeout, Parallel[I].InducedTimeout);
      EXPECT_EQ(Serial[I].Stable, Parallel[I].Stable);
    }
  }
}

TEST(ExecDeterminismTest, ReducerThreadCountInvariant) {
  // The reducer's speculative parallel evaluation must replay the
  // serial acceptance sequence exactly: same final witness, same stats.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Oclgrind = configById(Registry, 19);

  TestCase T;
  T.Name = "padded comma bug";
  T.Source = "int helper(int v) { return v * 3 + 1; }\n"
             "kernel void k(global ulong *out) {\n"
             "  int noise0 = 11;\n"
             "  int noise1 = helper(noise0);\n"
             "  for (int i = 0; i < 4; i++) noise1 += i;\n"
             "  short x = 1; uint y;\n"
             "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
             "  out[get_global_id(0)] = y;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);

  auto StillInteresting = [&](const TestCase &Candidate) {
    RunOutcome R = runTestOnReference(Candidate, false);
    RunOutcome B = runTestOnConfig(Candidate, Oclgrind, false);
    return R.ok() && B.ok() && R.OutputHash != B.OutputHash;
  };

  ReducerOptions Opts;
  Opts.Exec.Threads = 1;
  ReduceStats SerialStats;
  TestCase SerialBest = reduceTest(T, StillInteresting, Opts, &SerialStats);

  for (unsigned Threads : {2u, 8u}) {
    Opts.Exec.Threads = Threads;
    ReduceStats Stats;
    TestCase Best = reduceTest(T, StillInteresting, Opts, &Stats);
    EXPECT_EQ(Best.Source, SerialBest.Source)
        << "thread count " << Threads;
    EXPECT_EQ(Stats.CandidatesTried, SerialStats.CandidatesTried);
    EXPECT_EQ(Stats.CandidatesKept, SerialStats.CandidatesKept);
    EXPECT_EQ(Stats.FinalLines, SerialStats.FinalLines);
  }
}

TEST(RngForkForJobTest, IndexedStreamsAreStableAndIndependent) {
  Rng Parent(123);
  Rng A = Parent.forkForJob(5);
  Rng B = Parent.forkForJob(5);
  // Same parent state + same index => same stream (forkForJob is
  // const and does not advance the parent).
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  // Adjacent indices must diverge.
  Rng C = Parent.forkForJob(6);
  Rng D = Parent.forkForJob(5);
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += C.next() == D.next();
  EXPECT_LT(Same, 5u);

  // The parent stream is untouched by forking.
  Rng Fresh(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Parent.next(), Fresh.next());
}
