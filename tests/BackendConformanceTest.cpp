//===- BackendConformanceTest.cpp - ExecBackend conformance suite ------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The pipeline's contract is that the backend choice is unobservable
// in campaign output: every ExecBackend implementation — inline,
// thread pool at any worker count, and the fork-isolated process pool
// — must produce results bit-identical to the serial reference, for
// raw batches and for all three campaign drivers. This suite runs the
// same conformance checks against every implementation, plus the
// properties only one backend can provide: crash/timeout isolation
// (procs), bounded-memory sharded streaming, and the guarantee that
// CampaignSettings::Progress fires on the campaign's calling thread.
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"
#include "exec/JobSerialize.h"
#include "device/DeviceConfig.h"
#include "oracle/Campaign.h"

#include <gtest/gtest.h>

#include <thread>

using namespace clfuzz;

namespace {

/// Every backend configuration under test.
std::vector<ExecOptions> conformanceMatrix() {
  std::vector<ExecOptions> Matrix;
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Inline));
  for (unsigned Threads : {1u, 2u, 8u})
    Matrix.push_back(ExecOptions::withBackend(BackendKind::Threads, Threads));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Procs, 2));
  return Matrix;
}

std::string describe(const ExecOptions &O) {
  return std::string(backendKindName(O.Backend)) + "/" +
         std::to_string(O.Threads) + "w/shard" +
         std::to_string(O.resolvedShardSize());
}

std::vector<DeviceConfig> smallZoo() {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo;
  for (int Id : {1, 12, 14, 19})
    Zoo.push_back(configById(Registry, Id));
  return Zoo;
}

std::vector<ExecJob> smallBatch(const TestCase &T,
                                const std::vector<DeviceConfig> &Zoo) {
  std::vector<ExecJob> Jobs;
  for (const DeviceConfig &C : Zoo)
    for (bool Opt : {false, true})
      Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
  Jobs.push_back(ExecJob::onReference(T, true, RunSettings()));
  return Jobs;
}

void expectSameOutcomes(const std::vector<RunOutcome> &A,
                        const std::vector<RunOutcome> &B,
                        const std::string &Ctx) {
  ASSERT_EQ(A.size(), B.size()) << Ctx;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Status, B[I].Status) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHash, B[I].OutputHash) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Steps, B[I].Steps) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHead, B[I].OutputHead) << Ctx << " job " << I;
  }
}

CampaignSettings smallCampaign(const ExecOptions &Exec) {
  CampaignSettings S;
  S.KernelsPerMode = 4;
  S.Exec = Exec;
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 128;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Raw batch conformance
//===----------------------------------------------------------------------===//

TEST(BackendConformanceTest, BatchesMatchSerialReference) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = 20257;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = smallBatch(T, Zoo);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  for (const ExecOptions &Opts : conformanceMatrix()) {
    std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);
    expectSameOutcomes(Expected, Backend->run(Jobs), describe(Opts));
  }
}

TEST(BackendConformanceTest, EmptyAndSingleJobBatches) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 99;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  for (const ExecOptions &Opts : conformanceMatrix()) {
    std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);
    EXPECT_TRUE(Backend->run({}).empty()) << describe(Opts);

    std::vector<ExecJob> One = {
        ExecJob::onConfig(T, Zoo[0], true, RunSettings())};
    std::vector<RunOutcome> Got = Backend->run(One);
    ASSERT_EQ(Got.size(), 1u) << describe(Opts);
    EXPECT_EQ(Got[0].Status, runExecJob(One[0]).Status) << describe(Opts);

    // A backend must survive an empty batch *between* real batches.
    EXPECT_TRUE(Backend->run({}).empty()) << describe(Opts);
    EXPECT_EQ(Backend->run(One).size(), 1u) << describe(Opts);
  }
}

TEST(BackendConformanceTest, ForEachIndexPropagatesExceptions) {
  for (const ExecOptions &Opts : conformanceMatrix()) {
    std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);
    // The exception contract is part of backend interchangeability:
    // every index runs (a caller that catches and continues sees the
    // same side-effect state on every backend), and the first error
    // is rethrown after the batch drains.
    std::vector<unsigned> Ran(32, 0);
    EXPECT_THROW(
        Backend->forEachIndex(32,
                              [&](size_t I) {
                                Ran[I] = 1;
                                if (I == 7)
                                  throw std::runtime_error("boom");
                              }),
        std::runtime_error)
        << describe(Opts);
    for (size_t I = 0; I != Ran.size(); ++I)
      EXPECT_EQ(Ran[I], 1u)
          << describe(Opts) << ": index " << I
          << " skipped after an earlier throw";
    // Usable afterwards.
    std::vector<unsigned> Hits(8, 0);
    Backend->forEachIndex(8, [&](size_t I) { Hits[I] = 1; });
    for (unsigned H : Hits)
      EXPECT_EQ(H, 1u) << describe(Opts);
  }
}

//===----------------------------------------------------------------------===//
// Campaign-level bit-identity (Tables 1/4/5)
//===----------------------------------------------------------------------===//

TEST(BackendConformanceTest, DifferentialCampaignIdenticalOnAllBackends) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<GenMode> Modes = {GenMode::Barrier, GenMode::All};

  std::vector<ModeTable> Reference = runDifferentialCampaign(
      Zoo, Modes,
      smallCampaign(ExecOptions::withBackend(BackendKind::Inline)));
  ASSERT_FALSE(Reference.empty());

  for (const ExecOptions &Opts : conformanceMatrix()) {
    std::vector<ModeTable> Got =
        runDifferentialCampaign(Zoo, Modes, smallCampaign(Opts));
    ASSERT_EQ(Reference.size(), Got.size()) << describe(Opts);
    for (size_t I = 0; I != Reference.size(); ++I) {
      EXPECT_EQ(Reference[I].Mode, Got[I].Mode) << describe(Opts);
      EXPECT_EQ(Reference[I].NumTests, Got[I].NumTests) << describe(Opts);
      ASSERT_EQ(Reference[I].Cells.size(), Got[I].Cells.size())
          << describe(Opts);
      auto ItA = Reference[I].Cells.begin();
      auto ItB = Got[I].Cells.begin();
      for (; ItA != Reference[I].Cells.end(); ++ItA, ++ItB) {
        EXPECT_EQ(ItA->first.ConfigId, ItB->first.ConfigId);
        EXPECT_EQ(ItA->first.Opt, ItB->first.Opt);
        EXPECT_EQ(ItA->second.W, ItB->second.W) << describe(Opts);
        EXPECT_EQ(ItA->second.BF, ItB->second.BF) << describe(Opts);
        EXPECT_EQ(ItA->second.C, ItB->second.C) << describe(Opts);
        EXPECT_EQ(ItA->second.TO, ItB->second.TO) << describe(Opts);
        EXPECT_EQ(ItA->second.Pass, ItB->second.Pass) << describe(Opts);
      }
    }
  }
}

TEST(BackendConformanceTest, ShardSizeNeverChangesTables) {
  // Slicing the stream differently must not change any table cell:
  // shard sizes 1, 3 and 1000 against the default.
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<GenMode> Modes = {GenMode::Barrier};

  std::vector<ModeTable> Reference = runDifferentialCampaign(
      Zoo, Modes,
      smallCampaign(ExecOptions::withBackend(BackendKind::Inline)));

  for (unsigned Shard : {1u, 3u, 1000u}) {
    ExecOptions Opts = ExecOptions::withBackend(BackendKind::Threads, 2);
    Opts.ShardSize = Shard;
    std::vector<ModeTable> Got =
        runDifferentialCampaign(Zoo, Modes, smallCampaign(Opts));
    ASSERT_EQ(Reference.size(), Got.size());
    EXPECT_EQ(Reference[0].NumTests, Got[0].NumTests)
        << "shard " << Shard;
    auto ItA = Reference[0].Cells.begin();
    auto ItB = Got[0].Cells.begin();
    for (; ItA != Reference[0].Cells.end(); ++ItA, ++ItB) {
      EXPECT_EQ(ItA->second.W, ItB->second.W) << "shard " << Shard;
      EXPECT_EQ(ItA->second.Pass, ItB->second.Pass) << "shard " << Shard;
    }
  }
}

TEST(BackendConformanceTest, EmiCampaignIdenticalOnAllBackends) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo = {configById(Registry, 12),
                                   configById(Registry, 19)};
  EmiCampaignSettings S;
  S.NumBases = 2;
  S.Base.BaseGen.MinThreads = 48;
  S.Base.BaseGen.MaxThreads = 96;

  S.Base.Exec = ExecOptions::withBackend(BackendKind::Inline);
  unsigned ReferenceUsable = 0;
  std::vector<EmiCampaignColumn> Reference =
      runEmiCampaign(Zoo, S, ReferenceUsable);

  for (const ExecOptions &Opts : conformanceMatrix()) {
    S.Base.Exec = Opts;
    unsigned Usable = 0;
    std::vector<EmiCampaignColumn> Got = runEmiCampaign(Zoo, S, Usable);
    EXPECT_EQ(ReferenceUsable, Usable) << describe(Opts);
    ASSERT_EQ(Reference.size(), Got.size()) << describe(Opts);
    for (size_t I = 0; I != Reference.size(); ++I) {
      EXPECT_EQ(Reference[I].Key.ConfigId, Got[I].Key.ConfigId);
      EXPECT_EQ(Reference[I].Key.Opt, Got[I].Key.Opt);
      EXPECT_EQ(Reference[I].BaseFails, Got[I].BaseFails) << describe(Opts);
      EXPECT_EQ(Reference[I].Wrong, Got[I].Wrong) << describe(Opts);
      EXPECT_EQ(Reference[I].InducedBF, Got[I].InducedBF) << describe(Opts);
      EXPECT_EQ(Reference[I].InducedCrash, Got[I].InducedCrash)
          << describe(Opts);
      EXPECT_EQ(Reference[I].InducedTimeout, Got[I].InducedTimeout)
          << describe(Opts);
      EXPECT_EQ(Reference[I].Stable, Got[I].Stable) << describe(Opts);
    }
  }
}

//===----------------------------------------------------------------------===//
// Process-pool fault isolation
//===----------------------------------------------------------------------===//

TEST(BackendConformanceTest, ProcsIsolatesACrashingJob) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 4242;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  // Job 1 of 4 hard-aborts its worker process; the campaign must
  // survive, record a crash outcome for exactly that job, and compute
  // the neighbours normally.
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 4; ++I)
    Jobs.push_back(ExecJob::onConfig(T, Zoo[0], true, RunSettings()));
  Jobs[1].Settings.DebugHardAbort = true;

  std::unique_ptr<ExecBackend> Backend =
      makeBackend(ExecOptions::withBackend(BackendKind::Procs, 2));
  std::vector<RunOutcome> Got = Backend->run(Jobs);
  ASSERT_EQ(Got.size(), 4u);

  RunOutcome Clean = runExecJob(Jobs[0]);
  EXPECT_EQ(Got[1].Status, RunStatus::Crash);
  EXPECT_NE(Got[1].Message.find("isolated by process pool"),
            std::string::npos)
      << Got[1].Message;
  for (size_t I : {size_t(0), size_t(2), size_t(3)}) {
    EXPECT_EQ(Got[I].Status, Clean.Status) << "job " << I;
    EXPECT_EQ(Got[I].OutputHash, Clean.OutputHash) << "job " << I;
  }

  // The pool must still be usable for the next batch.
  std::vector<RunOutcome> Again = Backend->run(
      {ExecJob::onConfig(T, Zoo[0], true, RunSettings())});
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_EQ(Again[0].Status, Clean.Status);
}

TEST(BackendConformanceTest, ProcsBatchedFramesMatchSerialReference) {
  // A large cheap batch rides several jobs per worker frame (the
  // adaptive batching path); results must still be keyed by submission
  // index and identical to the serial reference, and a crash buried in
  // the middle of a frame must fail only its own job - the batch
  // neighbours retry alone and land on their true results.
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 60001;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 40; ++I)
    Jobs.push_back(
        ExecJob::onConfig(T, Zoo[I % Zoo.size()], I % 2 == 0, RunSettings()));
  Jobs[7].Settings.DebugHardAbort = true;
  Jobs[23].Settings.DebugHardAbort = true;

  std::unique_ptr<ExecBackend> Backend =
      makeBackend(ExecOptions::withBackend(BackendKind::Procs, 2));
  std::vector<RunOutcome> Got = Backend->run(Jobs);
  ASSERT_EQ(Got.size(), Jobs.size());

  for (size_t I = 0; I != Jobs.size(); ++I) {
    if (I == 7 || I == 23) {
      EXPECT_EQ(Got[I].Status, RunStatus::Crash) << "job " << I;
      EXPECT_NE(Got[I].Message.find("isolated by process pool"),
                std::string::npos)
          << Got[I].Message;
      continue;
    }
    RunOutcome Clean = runExecJob(Jobs[I]);
    EXPECT_EQ(Got[I].Status, Clean.Status) << "job " << I;
    EXPECT_EQ(Got[I].OutputHash, Clean.OutputHash) << "job " << I;
    EXPECT_EQ(Got[I].Message, Clean.Message) << "job " << I;
  }
}

TEST(BackendConformanceTest, ProcsKillsARunawayJob) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 777;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Procs, 2);
  Opts.ProcTimeoutMs = 200;
  std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);

  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 3; ++I)
    Jobs.push_back(ExecJob::onConfig(T, Zoo[0], true, RunSettings()));
  Jobs[0].Settings.DebugSpinMs = 60000; // far past the deadline

  std::vector<RunOutcome> Got = Backend->run(Jobs);
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0].Status, RunStatus::Timeout);
  EXPECT_NE(Got[0].Message.find("wall-clock deadline"), std::string::npos)
      << Got[0].Message;
  RunOutcome Clean = runExecJob(Jobs[1]);
  EXPECT_EQ(Got[1].OutputHash, Clean.OutputHash);
  EXPECT_EQ(Got[2].OutputHash, Clean.OutputHash);
}

TEST(BackendConformanceTest, CrashingCellBecomesACampaignVerdict) {
  // End to end: a deliberately crashing cell inside a differential
  // campaign on the procs backend lands in the crash column instead of
  // terminating the campaign.
  std::vector<DeviceConfig> Zoo = smallZoo();
  CampaignSettings S =
      smallCampaign(ExecOptions::withBackend(BackendKind::Procs, 2));
  S.KernelsPerMode = 2;
  S.Run.DebugHardAbort = true; // every cell's worker dies

  std::vector<ModeTable> Tables =
      runDifferentialCampaign(Zoo, {GenMode::Basic}, S);
  ASSERT_EQ(Tables.size(), 1u);
  EXPECT_EQ(Tables[0].NumTests, 2u);
  for (const auto &[Key, Counts] : Tables[0].Cells) {
    EXPECT_EQ(Counts.C, Tables[0].NumTests)
        << "config " << Key.ConfigId << (Key.Opt ? "+" : "-");
    EXPECT_EQ(Counts.total(), Tables[0].NumTests);
  }
}

//===----------------------------------------------------------------------===//
// Job serialization round trip
//===----------------------------------------------------------------------===//

TEST(BackendConformanceTest, JobDescriptorRoundTripsExactly) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = 31415;
  GO.NumEmiBlocks = 3;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));

  RunSettings RS;
  RS.SchedulerSeed = 99;
  RS.InvertDead = true;
  ExecJob Job = ExecJob::onConfig(T, configById(Registry, 14), true, RS);

  WireWriter W;
  serializeExecJob(W, Job);
  WireReader R(W.buffer().data(), W.buffer().size());
  OwnedExecJob Round = deserializeExecJob(R);
  EXPECT_TRUE(R.atEnd());

  EXPECT_EQ(Round.Test.Name, T.Name);
  EXPECT_EQ(Round.Test.Source, T.Source);
  EXPECT_EQ(Round.Test.Buffers.size(), T.Buffers.size());
  ASSERT_TRUE(Round.Config.has_value());
  EXPECT_EQ(Round.Config->Id, 14);
  EXPECT_EQ(Round.Config->Salt, configById(Registry, 14).Salt);
  EXPECT_TRUE(Round.Settings.InvertDead);

  // The round-tripped job must execute identically — this is the
  // "forkForJob streams survive the subprocess boundary" guarantee:
  // every seed a run consumes is part of the descriptor.
  RunOutcome A = runExecJob(Job);
  RunOutcome B = runExecJob(Round.view());
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.OutputHash, B.OutputHash);
  EXPECT_EQ(A.Steps, B.Steps);
}

//===----------------------------------------------------------------------===//
// Bounded-memory sharded streaming
//===----------------------------------------------------------------------===//

namespace {

/// Source that checks the pipeline never holds two shards: every pull
/// must come after all previously delivered tests were consumed.
class StreamingAuditSource final : public TestSource {
public:
  StreamingAuditSource(unsigned Total, unsigned *ConsumedSoFar)
      : Total(Total), ConsumedSoFar(ConsumedSoFar) {}

  std::vector<TestCase> next(unsigned MaxShard) override {
    // All tests handed out before this pull must already be consumed —
    // i.e. at most one shard is ever in flight.
    EXPECT_EQ(*ConsumedSoFar, Delivered)
        << "pipeline pulled a new shard before draining the previous one";
    unsigned N = std::min(MaxShard, Total - Delivered);
    std::vector<TestCase> Shard(N);
    for (unsigned I = 0; I != N; ++I) {
      GenOptions GO;
      GO.Seed = 9000 + Delivered + I;
      Shard[I] = TestCase::fromGenerated(generateKernel(GO));
    }
    Delivered += N;
    MaxShardSeen = std::max(MaxShardSeen, N);
    return Shard;
  }

  unsigned Total;
  unsigned *ConsumedSoFar;
  unsigned Delivered = 0;
  unsigned MaxShardSeen = 0;
};

class CountingSink final : public ResultSink {
public:
  explicit CountingSink(unsigned *Consumed) : Consumed(Consumed) {}
  void consumeTest(size_t, const TestCase &,
                   const std::vector<RunOutcome> &) override {
    ++*Consumed;
  }
  unsigned *Consumed;
};

} // namespace

TEST(BackendConformanceTest, PipelineHoldsAtMostOneShard) {
  // Stream 10x a typical per-mode count through a small shard bound
  // and verify the pipeline's peak residency is the shard size.
  const unsigned Total = 320;
  const unsigned ShardSize = 32;
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &C = configById(Registry, 19);

  unsigned Consumed = 0;
  StreamingAuditSource Source(Total, &Consumed);
  CountingSink Sink(&Consumed);
  std::unique_ptr<ExecBackend> Backend =
      makeBackend(ExecOptions::withBackend(BackendKind::Threads, 2));

  PipelineStats Stats = runShardedCampaign(
      Source, *Backend, ShardSize,
      [&](size_t, const TestCase &T, std::vector<ExecJob> &Jobs) {
        Jobs.push_back(ExecJob::onConfig(T, C, true, RunSettings()));
      },
      Sink);

  EXPECT_EQ(Stats.Tests, Total);
  EXPECT_EQ(Stats.Shards, Total / ShardSize);
  EXPECT_LE(Stats.PeakResidentTests, ShardSize);
  EXPECT_EQ(Source.MaxShardSeen, ShardSize);
  EXPECT_EQ(Consumed, Total);
}

TEST(BackendConformanceTest, GeneratorSourceRespectsShardBoundUnderWideBackends) {
  // More workers than the shard has room: generation waves must be
  // capped at the shard capacity, so a --shard-size=1 --threads=8 run
  // really does hold one TestCase at a time — and still produces the
  // identical sequence.
  ThreadPoolBackend Wide(ExecOptions::withThreads(8));
  InlineBackend Narrow;
  GenOptions BaseGen;
  BaseGen.MinThreads = 48;
  BaseGen.MaxThreads = 128;

  auto Collect = [&](ExecBackend &Backend, unsigned ShardSize) {
    GeneratorSource Source(GenMode::Basic, BaseGen, 321, 6,
                           /*Prefilter=*/false, nullptr, RunSettings(),
                           Backend);
    std::vector<std::string> Sources;
    for (;;) {
      std::vector<TestCase> Shard = Source.next(ShardSize);
      if (Shard.empty())
        break;
      EXPECT_LE(Shard.size(), ShardSize);
      for (TestCase &T : Shard)
        Sources.push_back(T.Source);
    }
    return Sources;
  };

  std::vector<std::string> Reference = Collect(Narrow, 1000);
  EXPECT_EQ(Reference.size(), 6u);
  EXPECT_EQ(Collect(Wide, 1), Reference);
  EXPECT_EQ(Collect(Wide, 2), Reference);
}

TEST(BackendConformanceTest, GeneratorSourceIsShardSliceInvariant) {
  // The accepted test sequence must not depend on how it is pulled.
  InlineBackend Backend;
  GenOptions BaseGen;
  BaseGen.MinThreads = 48;
  BaseGen.MaxThreads = 128;

  auto Collect = [&](unsigned ShardSize) {
    GeneratorSource Source(GenMode::Barrier, BaseGen, 555, 10,
                           /*Prefilter=*/false, nullptr, RunSettings(),
                           Backend);
    std::vector<std::string> Names;
    for (;;) {
      std::vector<TestCase> Shard = Source.next(ShardSize);
      if (Shard.empty())
        break;
      for (TestCase &T : Shard)
        Names.push_back(T.Source);
    }
    return Names;
  };

  std::vector<std::string> Whole = Collect(1000);
  EXPECT_EQ(Whole.size(), 10u);
  for (unsigned Shard : {1u, 3u, 7u})
    EXPECT_EQ(Collect(Shard), Whole) << "shard size " << Shard;
}

//===----------------------------------------------------------------------===//
// Progress threading guarantee
//===----------------------------------------------------------------------===//

TEST(BackendConformanceTest, ProgressFiresOnCallingThreadOnly) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  const std::thread::id Caller = std::this_thread::get_id();

  for (const ExecOptions &Opts : conformanceMatrix()) {
    CampaignSettings S = smallCampaign(Opts);
    S.KernelsPerMode = 3;
    unsigned Calls = 0;
    unsigned LastDone = 0;
    bool WrongThread = false;
    S.Progress = [&](unsigned Done, unsigned Total) {
      if (std::this_thread::get_id() != Caller)
        WrongThread = true;
      ++Calls;
      EXPECT_GE(Done, LastDone) << describe(Opts);
      EXPECT_LE(Done, Total) << describe(Opts);
      LastDone = Done;
    };
    runDifferentialCampaign(Zoo, {GenMode::Basic}, S);
    EXPECT_FALSE(WrongThread)
        << describe(Opts) << ": Progress fired off the calling thread";
    EXPECT_EQ(Calls, 3u) << describe(Opts);
  }
}
