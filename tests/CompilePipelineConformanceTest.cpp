//===- CompilePipelineConformanceTest.cpp - Clone-don't-reparse identity -----===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The parse-once/clone-per-cell front end (docs/compile-pipeline.md)
// is only admissible because it is observationally invisible: a cell
// compiled from a cloned AST must produce byte-for-byte the outcome a
// per-cell re-parse produces, for every backend, worker count, cache
// state and campaign shape. This suite pins that contract — clone
// structural identity via re-printing, column byte-identity across
// clone on/off × {inline, threads, procs} × {cache off, mem}, the
// Table 1/4/5 campaign drivers and the reducer under both modes — and
// the per-phase compile profiler's sanity (clone count equals the
// optimising-cell count, phase times sum exactly to the total).
//
//===----------------------------------------------------------------------===//

#include "device/CompileCounters.h"
#include "device/DeviceConfig.h"
#include "device/Driver.h"
#include "exec/ExecBackend.h"
#include "exec/OutcomeCache.h"
#include "gen/Generator.h"
#include "minicl/AST.h"
#include "minicl/ASTClone.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "oracle/Campaign.h"
#include "oracle/Reducer.h"
#include "support/Diag.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace clfuzz;

namespace {

/// Saves and restores the process-wide clone toggle so a failing
/// assertion cannot leak a mode into unrelated tests.
class CompilePipelineTest : public ::testing::Test {
protected:
  void SetUp() override { SavedClone = compileCloneEnabled(); }
  void TearDown() override { setCompileCloneEnabled(SavedClone); }

private:
  bool SavedClone = true;
};

GeneratedKernel generate(GenMode Mode, uint64_t Seed,
                         unsigned EmiBlocks = 0) {
  GenOptions GO;
  GO.Mode = Mode;
  GO.Seed = Seed;
  GO.NumEmiBlocks = EmiBlocks;
  return generateKernel(GO);
}

/// The column workload every identity test shares: per kernel, every
/// above-threshold configuration contributes the full Table-1 cell
/// set (shared reference run, configuration at both opt levels), and
/// EMI kernels add the InvertDead placement probe (§7.4).
struct Workload {
  std::vector<TestCase> Tests;
  std::vector<DeviceConfig> Columns;
  std::vector<ExecJob> Jobs;
};

Workload buildWorkload() {
  Workload W;
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  for (int Id : paperAboveThresholdIds())
    W.Columns.push_back(configById(Registry, Id));
  W.Tests.push_back(TestCase::fromGenerated(generate(GenMode::All, 7)));
  W.Tests.push_back(TestCase::fromGenerated(generate(GenMode::Barrier, 5)));
  W.Tests.push_back(
      TestCase::fromGenerated(generate(GenMode::All, 11, /*EmiBlocks=*/2)));
  for (size_t T = 0; T != W.Tests.size(); ++T)
    for (const DeviceConfig &C : W.Columns) {
      RunSettings S;
      W.Jobs.push_back(ExecJob::onReference(W.Tests[T], false, S));
      W.Jobs.push_back(ExecJob::onConfig(W.Tests[T], C, false, S));
      W.Jobs.push_back(ExecJob::onConfig(W.Tests[T], C, true, S));
      if (T == 2) {
        RunSettings Inv;
        Inv.InvertDead = true;
        W.Jobs.push_back(ExecJob::onReference(W.Tests[T], false, Inv));
        W.Jobs.push_back(ExecJob::onConfig(W.Tests[T], C, true, Inv));
      }
    }
  return W;
}

void expectSameOutcomes(const std::vector<RunOutcome> &A,
                        const std::vector<RunOutcome> &B,
                        const std::string &Ctx) {
  ASSERT_EQ(A.size(), B.size()) << Ctx;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Status, B[I].Status) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].OutputHash, B[I].OutputHash) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].OutputHead, B[I].OutputHead) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].Steps, B[I].Steps) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].RaceFound, B[I].RaceFound) << Ctx << " cell " << I;
    EXPECT_EQ(A[I].RaceMessage, B[I].RaceMessage) << Ctx << " cell " << I;
  }
}

std::vector<RunOutcome> runWorkload(const Workload &W, BackendKind Kind,
                                    unsigned Threads, bool MemCache) {
  ExecOptions E = ExecOptions::withBackend(Kind, Threads);
  if (MemCache) {
    OutcomeCacheOptions CO;
    CO.Mode = CacheMode::Mem;
    E.Cache = makeOutcomeCache(CO);
  }
  std::unique_ptr<ExecBackend> Backend = makeBackend(E);
  return Backend->runColumns(groupIntoColumns(W.Jobs));
}

} // namespace

//===----------------------------------------------------------------------===//
// Admission rule
//===----------------------------------------------------------------------===//

TEST_F(CompilePipelineTest, AdmissionRuleMatchesToggle) {
  // Reference runs: the clean bug model's pipeline is empty exactly
  // when the optimiser is off.
  setCompileCloneEnabled(true);
  EXPECT_EQ(frontEndUseFor(nullptr, false), FrontEndUse::ReadShared);
  EXPECT_EQ(frontEndUseFor(nullptr, true), FrontEndUse::ClonePrivate);
  setCompileCloneEnabled(false);
  EXPECT_EQ(frontEndUseFor(nullptr, false), FrontEndUse::ReadShared);
  EXPECT_EQ(frontEndUseFor(nullptr, true), FrontEndUse::Reparse);

  // Across the zoo: the toggle only ever converts ClonePrivate cells
  // to Reparse — pass-free cells read the shared AST either way, so
  // turning the clone off never admits or evicts a shared reader.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  for (const DeviceConfig &C : Registry)
    for (bool Opt : {false, true}) {
      setCompileCloneEnabled(true);
      FrontEndUse On = frontEndUseFor(&C, Opt);
      EXPECT_NE(On, FrontEndUse::Reparse);
      setCompileCloneEnabled(false);
      FrontEndUse Off = frontEndUseFor(&C, Opt);
      if (On == FrontEndUse::ReadShared)
        EXPECT_EQ(Off, FrontEndUse::ReadShared) << C.Id;
      else
        EXPECT_EQ(Off, FrontEndUse::Reparse) << C.Id;
    }
}

//===----------------------------------------------------------------------===//
// Clone structural identity
//===----------------------------------------------------------------------===//

TEST_F(CompilePipelineTest, CloneReprintsIdentically) {
  // A clone is structurally identical to its source exactly when both
  // print to the same bytes — the printer covers every node kind,
  // type, qualifier and EMI annotation the generator can emit.
  struct Shape {
    GenMode Mode;
    uint64_t Seed;
    unsigned EmiBlocks;
  };
  const Shape Shapes[] = {{GenMode::All, 3, 0},
                          {GenMode::Basic, 17, 0},
                          {GenMode::Vector, 29, 0},
                          {GenMode::Barrier, 41, 0},
                          {GenMode::All, 53, 3}};
  for (const Shape &Sh : Shapes) {
    GeneratedKernel K = generate(Sh.Mode, Sh.Seed, Sh.EmiBlocks);
    auto Src = std::make_unique<ASTContext>();
    DiagEngine Diags;
    ASSERT_TRUE(parseProgram(K.Source, *Src, Diags)) << Diags.str();
    ASSERT_TRUE(checkProgram(*Src, Diags)) << Diags.str();
    std::string Original = printProgram(Src->program(), Src->types());

    std::unique_ptr<ASTContext> Copy = cloneContext(*Src);
    EXPECT_EQ(Original, printProgram(Copy->program(), Copy->types()))
        << K.Source;

    // Clone of a clone: catches state the first clone forgot to carry
    // (flags, EMI ids, record completeness) that only shows up when
    // the copy itself is used as a source.
    std::unique_ptr<ASTContext> Copy2 = cloneContext(*Copy);
    EXPECT_EQ(Original, printProgram(Copy2->program(), Copy2->types()));
  }
}

TEST_F(CompilePipelineTest, CloneIsIndependentOfItsSource) {
  // Running the optimiser over the clone must leave the source AST
  // untouched — the property that lets one shared front end feed every
  // cell of a column.
  GeneratedKernel K = generate(GenMode::All, 3);
  auto Src = std::make_unique<ASTContext>();
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(K.Source, *Src, Diags));
  ASSERT_TRUE(checkProgram(*Src, Diags));
  std::string Original = printProgram(Src->program(), Src->types());

  std::unique_ptr<ASTContext> Copy = cloneContext(*Src);
  TestCase T = TestCase::fromGenerated(K);
  // Optimised reference compile mutates the clone through the driver
  // path (clone enabled, shared front end reused by value here).
  setCompileCloneEnabled(true);
  TestFrontEnd FE(T);
  ASSERT_TRUE(FE.ok());
  RunOutcome O = runTestOnReference(T, /*Optimize=*/true, RunSettings(), &FE);
  EXPECT_EQ(O.Status, RunStatus::Ok);
  // The shared front end still prints as parsed.
  EXPECT_EQ(Original,
            printProgram(FE.context().program(), FE.context().types()));
  (void)Copy;
}

//===----------------------------------------------------------------------===//
// Column byte-identity: clone on/off × backend × cache
//===----------------------------------------------------------------------===//

TEST_F(CompilePipelineTest, ColumnsIdenticalAcrossCloneBackendAndCache) {
  Workload W = buildWorkload();

  setCompileCloneEnabled(true);
  std::vector<RunOutcome> Reference =
      runWorkload(W, BackendKind::Inline, 1, /*MemCache=*/false);

  struct Case {
    bool Clone;
    BackendKind Kind;
    unsigned Threads;
    bool MemCache;
    const char *Name;
  };
  const Case Cases[] = {
      {false, BackendKind::Inline, 1, false, "off/inline"},
      {true, BackendKind::Threads, 3, false, "on/threads3"},
      {false, BackendKind::Threads, 3, false, "off/threads3"},
      {true, BackendKind::Procs, 2, false, "on/procs2"},
      {false, BackendKind::Procs, 2, false, "off/procs2"},
      {true, BackendKind::Inline, 1, true, "on/inline/mem"},
      {false, BackendKind::Inline, 1, true, "off/inline/mem"},
      {true, BackendKind::Threads, 2, true, "on/threads2/mem"},
  };
  for (const Case &C : Cases) {
    setCompileCloneEnabled(C.Clone);
    expectSameOutcomes(Reference,
                       runWorkload(W, C.Kind, C.Threads, C.MemCache),
                       C.Name);
  }
}

//===----------------------------------------------------------------------===//
// Campaign drivers (Tables 1, 4, 5) and the reducer
//===----------------------------------------------------------------------===//

TEST_F(CompilePipelineTest, Table1ClassificationIdentical) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  CampaignSettings S;
  S.KernelsPerMode = 2;

  setCompileCloneEnabled(true);
  std::vector<ReliabilityRow> On = classifyConfigurations(Registry, S);
  setCompileCloneEnabled(false);
  std::vector<ReliabilityRow> Off = classifyConfigurations(Registry, S);

  ASSERT_EQ(On.size(), Off.size());
  for (size_t I = 0; I != On.size(); ++I) {
    EXPECT_EQ(On[I].ConfigId, Off[I].ConfigId);
    EXPECT_EQ(On[I].AboveThreshold, Off[I].AboveThreshold);
    EXPECT_EQ(On[I].Counts.W, Off[I].Counts.W);
    EXPECT_EQ(On[I].Counts.BF, Off[I].Counts.BF);
    EXPECT_EQ(On[I].Counts.C, Off[I].Counts.C);
    EXPECT_EQ(On[I].Counts.TO, Off[I].Counts.TO);
    EXPECT_EQ(On[I].Counts.Pass, Off[I].Counts.Pass);
  }
}

TEST_F(CompilePipelineTest, Table4DifferentialCampaignIdentical) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));
  CampaignSettings S;
  S.KernelsPerMode = 3;
  std::vector<GenMode> Modes = {GenMode::Basic, GenMode::Barrier};

  auto Run = [&] { return runDifferentialCampaign(Above, Modes, S); };
  setCompileCloneEnabled(true);
  std::vector<ModeTable> On = Run();
  setCompileCloneEnabled(false);
  std::vector<ModeTable> Off = Run();

  ASSERT_EQ(On.size(), Off.size());
  for (size_t I = 0; I != On.size(); ++I) {
    EXPECT_EQ(On[I].Mode, Off[I].Mode);
    EXPECT_EQ(On[I].NumTests, Off[I].NumTests);
    ASSERT_EQ(On[I].Cells.size(), Off[I].Cells.size());
    auto A = On[I].Cells.begin();
    auto B = Off[I].Cells.begin();
    for (; A != On[I].Cells.end(); ++A, ++B) {
      EXPECT_EQ(A->first.ConfigId, B->first.ConfigId);
      EXPECT_EQ(A->first.Opt, B->first.Opt);
      EXPECT_EQ(A->second.W, B->second.W);
      EXPECT_EQ(A->second.BF, B->second.BF);
      EXPECT_EQ(A->second.C, B->second.C);
      EXPECT_EQ(A->second.TO, B->second.TO);
      EXPECT_EQ(A->second.Pass, B->second.Pass);
    }
  }
}

TEST_F(CompilePipelineTest, Table5EmiCampaignIdentical) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Above;
  for (int Id : paperAboveThresholdIds())
    Above.push_back(configById(Registry, Id));
  EmiCampaignSettings S;
  S.NumBases = 2;
  S.Base.KernelsPerMode = 2;

  unsigned UsableOn = 0, UsableOff = 0;
  setCompileCloneEnabled(true);
  std::vector<EmiCampaignColumn> On = runEmiCampaign(Above, S, UsableOn);
  setCompileCloneEnabled(false);
  std::vector<EmiCampaignColumn> Off = runEmiCampaign(Above, S, UsableOff);

  EXPECT_EQ(UsableOn, UsableOff);
  ASSERT_EQ(On.size(), Off.size());
  for (size_t I = 0; I != On.size(); ++I) {
    EXPECT_EQ(On[I].Key.ConfigId, Off[I].Key.ConfigId);
    EXPECT_EQ(On[I].Key.Opt, Off[I].Key.Opt);
    EXPECT_EQ(On[I].BaseFails, Off[I].BaseFails);
    EXPECT_EQ(On[I].Wrong, Off[I].Wrong);
    EXPECT_EQ(On[I].InducedBF, Off[I].InducedBF);
    EXPECT_EQ(On[I].InducedCrash, Off[I].InducedCrash);
    EXPECT_EQ(On[I].InducedTimeout, Off[I].InducedTimeout);
    EXPECT_EQ(On[I].Stable, Off[I].Stable);
  }
}

TEST_F(CompilePipelineTest, ReductionIdenticalAcrossCloneAndBackend) {
  // The Figure 2(f) comma bug buried in unrelated statements — the
  // same witness ReducerConformanceTest pins across backends.
  TestCase Witness;
  Witness.Name = "padded comma bug";
  Witness.Source = "int helper(int v) { return v * 3 + 1; }\n"
                   "kernel void k(global ulong *out) {\n"
                   "  int noise0 = 11;\n"
                   "  int noise1 = helper(noise0);\n"
                   "  for (int i = 0; i < 4; i++) noise1 += i;\n"
                   "  if (noise1 > 100) { noise0 = 2; } else { noise0 = 3; }\n"
                   "  short x = 1; uint y;\n"
                   "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
                   "  int noise2 = noise0 + noise1;\n"
                   "  noise2 = noise2 * 2;\n"
                   "  out[get_global_id(0)] = y;\n"
                   "}\n";
  Witness.Range.Global[0] = 1;
  Witness.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  Witness.Buffers.push_back(Out);

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19),
                                     /*Opt=*/false);

  struct Run {
    std::string Source;
    std::string Trace;
    unsigned Tried = 0;
    unsigned Rounds = 0;
  };
  auto Reduce = [&](BackendKind Kind, unsigned Threads) {
    Run R;
    ReducerOptions Opts;
    Opts.Exec = ExecOptions::withBackend(Kind, Threads);
    Opts.Trace = [&R](const ReduceTraceEvent &E) {
      R.Trace += renderReduceTraceJsonl(E);
    };
    ReduceStats Stats;
    R.Source = reduceTest(Witness, Oracle, Opts, &Stats).Source;
    R.Tried = Stats.CandidatesTried;
    R.Rounds = Stats.Rounds;
    return R;
  };

  setCompileCloneEnabled(true);
  Run Reference = Reduce(BackendKind::Inline, 1);
  for (bool Clone : {true, false}) {
    setCompileCloneEnabled(Clone);
    for (auto [Kind, Threads] :
         {std::pair{BackendKind::Inline, 1u},
          std::pair{BackendKind::Threads, 2u},
          std::pair{BackendKind::Procs, 2u}}) {
      Run R = Reduce(Kind, Threads);
      std::string Ctx = std::string(Clone ? "on/" : "off/") +
                        backendKindName(Kind);
      EXPECT_EQ(Reference.Source, R.Source) << Ctx;
      EXPECT_EQ(Reference.Trace, R.Trace) << Ctx;
      EXPECT_EQ(Reference.Tried, R.Tried) << Ctx;
      EXPECT_EQ(Reference.Rounds, R.Rounds) << Ctx;
    }
  }
}

//===----------------------------------------------------------------------===//
// The per-phase compile profiler
//===----------------------------------------------------------------------===//

TEST_F(CompilePipelineTest, CountersMatchAdmissionArithmetic) {
  Workload W = buildWorkload();

  // Expected phase counts from the admission rule alone: with the
  // clone on, each column parses once and every non-empty-pipeline
  // cell clones; with it off, those cells re-parse instead.
  size_t CloneCells = 0;
  setCompileCloneEnabled(true);
  for (const ExecJob &J : W.Jobs)
    if (frontEndUseFor(J.Config, J.Opt) == FrontEndUse::ClonePrivate)
      ++CloneCells;
  size_t Columns = groupIntoColumns(W.Jobs).size();

  CompileCounters Before = compileCounters();
  runWorkload(W, BackendKind::Inline, 1, /*MemCache=*/false);
  CompileCounters After = compileCounters();

  EXPECT_EQ(After.Parses - Before.Parses, Columns);
  EXPECT_EQ(After.Semas - Before.Semas, Columns);
  EXPECT_EQ(After.Clones - Before.Clones, CloneCells);
  // A cell the configuration's front-end checks reject clones but
  // never reaches the optimiser, so Opts is bounded by — not equal
  // to — the clone count.
  uint64_t OptsOn = After.Opts - Before.Opts;
  EXPECT_LE(OptsOn, CloneCells);
  EXPECT_GT(OptsOn, 0u);

  setCompileCloneEnabled(false);
  Before = compileCounters();
  runWorkload(W, BackendKind::Inline, 1, /*MemCache=*/false);
  After = compileCounters();

  EXPECT_EQ(After.Clones - Before.Clones, 0u);
  EXPECT_EQ(After.Parses - Before.Parses, Columns + CloneCells);
  // The toggle must not change which cells run the optimiser.
  EXPECT_EQ(After.Opts - Before.Opts, OptsOn);
}

TEST_F(CompilePipelineTest, PhaseTimesSumToTotal) {
  setCompileCloneEnabled(true);
  Workload W = buildWorkload();
  runWorkload(W, BackendKind::Inline, 1, /*MemCache=*/false);
  CompileCounters C = compileCounters();
  EXPECT_EQ(C.totalNs(), C.ParseNs + C.SemaNs + C.CloneNs + C.OptNs +
                             C.CodegenNs + C.ExecNs);
  EXPECT_GT(C.Parses, 0u);
  EXPECT_GT(C.Execs, 0u);
}
