//===- SupportTest.cpp - Tests for the support library ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/Hash.h"
#include "support/Rng.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace clfuzz;

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5u);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 2000; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng R(19);
  int Hits = 0;
  for (int I = 0; I != 100000; ++I)
    Hits += R.chance(0.25);
  EXPECT_NEAR(Hits / 100000.0, 0.25, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng R(23);
  for (unsigned N : {1u, 2u, 16u, 255u}) {
    std::vector<unsigned> P = R.permutation(N);
    ASSERT_EQ(P.size(), N);
    std::vector<unsigned> Sorted = P;
    std::sort(Sorted.begin(), Sorted.end());
    for (unsigned I = 0; I != N; ++I)
      EXPECT_EQ(Sorted[I], I);
  }
}

TEST(RngTest, PickWeightedRespectsZeroWeights) {
  Rng R(29);
  std::vector<unsigned> Weights = {0, 5, 0, 1};
  for (int I = 0; I != 1000; ++I) {
    size_t Idx = R.pickWeighted(Weights);
    EXPECT_TRUE(Idx == 1 || Idx == 3);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng A(99);
  Rng Child = A.fork();
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == Child.next();
  EXPECT_LT(Same, 5u);
}

TEST(HashTest, EmptyHashIsOffset) {
  EXPECT_EQ(Fnv64().value(), Fnv64::Offset);
}

TEST(HashTest, OrderSensitive) {
  EXPECT_NE(Fnv64().addU64(1).addU64(2).value(),
            Fnv64().addU64(2).addU64(1).value());
}

TEST(HashTest, StringMatchesBytes) {
  std::string S = "kernel";
  EXPECT_EQ(fnv64(S), fnv64(S.data(), S.size()));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringUtilTest, Hex) { EXPECT_EQ(toHex(0xffff0001u), "0xffff0001"); }

TEST(StringUtilTest, Pad) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(BackoffTest, BaseDelayGrowsMonotonically) {
  Backoff B(BackoffPolicy{100, 5000, 2, 0.0}, 1);
  unsigned Prev = 0;
  for (unsigned A = 0; A != 12; ++A) {
    unsigned D = B.baseDelayMs(A);
    EXPECT_GE(D, Prev) << "attempt " << A;
    Prev = D;
  }
  EXPECT_EQ(B.baseDelayMs(0), 100u);
  EXPECT_EQ(B.baseDelayMs(1), 200u);
  EXPECT_EQ(B.baseDelayMs(3), 800u);
}

TEST(BackoffTest, BaseDelaySaturatesAtCap) {
  Backoff B(BackoffPolicy{100, 5000, 2, 0.0}, 1);
  EXPECT_EQ(B.baseDelayMs(6), 5000u);  // 6400 clamped
  EXPECT_EQ(B.baseDelayMs(40), 5000u); // far past the cap
  // A huge attempt count must not overflow the 64-bit base.
  EXPECT_EQ(B.baseDelayMs(~0u - 1), 5000u);
}

TEST(BackoffTest, JitterStaysWithinBounds) {
  BackoffPolicy P{100, 5000, 2, 0.2};
  Backoff B(P, 99);
  for (int Round = 0; Round != 50; ++Round) {
    unsigned Attempt = B.attempts();
    unsigned Base = B.baseDelayMs(Attempt);
    unsigned D = B.nextDelayMs();
    EXPECT_GE(D, static_cast<unsigned>(Base * (1.0 - P.Jitter)) - 1)
        << "attempt " << Attempt;
    EXPECT_LE(D, static_cast<unsigned>(Base * (1.0 + P.Jitter)) + 1)
        << "attempt " << Attempt;
    EXPECT_GE(D, 1u);
  }
}

TEST(BackoffTest, SeededScheduleIsDeterministic) {
  Backoff A(BackoffPolicy{100, 5000, 2, 0.2}, 42);
  Backoff B(BackoffPolicy{100, 5000, 2, 0.2}, 42);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(A.nextDelayMs(), B.nextDelayMs()) << "step " << I;
  Backoff C(BackoffPolicy{100, 5000, 2, 0.2}, 43);
  unsigned Same = 0;
  Backoff A2(BackoffPolicy{100, 5000, 2, 0.2}, 42);
  for (int I = 0; I != 20; ++I)
    Same += A2.nextDelayMs() == C.nextDelayMs();
  EXPECT_LT(Same, 20u); // a different seed shifts at least one delay
}

TEST(BackoffTest, ResetRewindsToInitialDelay) {
  Backoff B(BackoffPolicy{100, 5000, 2, 0.0}, 7);
  for (int I = 0; I != 5; ++I)
    B.nextDelayMs();
  EXPECT_EQ(B.attempts(), 5u);
  EXPECT_EQ(B.nextDelayMs(), 3200u);
  B.reset();
  EXPECT_EQ(B.attempts(), 0u);
  EXPECT_EQ(B.nextDelayMs(), 100u);
}

TEST(BackoffTest, DegeneratePoliciesAreClamped) {
  // Zero initial, zero multiplier, cap below initial, jitter >= 1:
  // the constructor sanitizes all of them instead of dividing the
  // schedule into zeros or letting the delay go negative.
  Backoff B(BackoffPolicy{0, 0, 0, 2.0}, 5);
  EXPECT_GE(B.policy().InitialMs, 1u);
  EXPECT_GE(B.policy().Multiplier, 1u);
  EXPECT_GE(B.policy().MaxMs, B.policy().InitialMs);
  EXPECT_LT(B.policy().Jitter, 1.0);
  for (int I = 0; I != 10; ++I)
    EXPECT_GE(B.nextDelayMs(), 1u);
}

TEST(StringUtilTest, CountCodeLines) {
  std::string Src = "int x;\n\n// comment only\n  \t\nint y; // tail\n";
  EXPECT_EQ(countCodeLines(Src), 2u);
}
