//===- SupportTest.cpp - Tests for the support library ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"
#include "support/Rng.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace clfuzz;

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5u);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 2000; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ChanceExtremes) {
  Rng R(5);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng R(19);
  int Hits = 0;
  for (int I = 0; I != 100000; ++I)
    Hits += R.chance(0.25);
  EXPECT_NEAR(Hits / 100000.0, 0.25, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng R(23);
  for (unsigned N : {1u, 2u, 16u, 255u}) {
    std::vector<unsigned> P = R.permutation(N);
    ASSERT_EQ(P.size(), N);
    std::vector<unsigned> Sorted = P;
    std::sort(Sorted.begin(), Sorted.end());
    for (unsigned I = 0; I != N; ++I)
      EXPECT_EQ(Sorted[I], I);
  }
}

TEST(RngTest, PickWeightedRespectsZeroWeights) {
  Rng R(29);
  std::vector<unsigned> Weights = {0, 5, 0, 1};
  for (int I = 0; I != 1000; ++I) {
    size_t Idx = R.pickWeighted(Weights);
    EXPECT_TRUE(Idx == 1 || Idx == 3);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng A(99);
  Rng Child = A.fork();
  unsigned Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == Child.next();
  EXPECT_LT(Same, 5u);
}

TEST(HashTest, EmptyHashIsOffset) {
  EXPECT_EQ(Fnv64().value(), Fnv64::Offset);
}

TEST(HashTest, OrderSensitive) {
  EXPECT_NE(Fnv64().addU64(1).addU64(2).value(),
            Fnv64().addU64(2).addU64(1).value());
}

TEST(HashTest, StringMatchesBytes) {
  std::string S = "kernel";
  EXPECT_EQ(fnv64(S), fnv64(S.data(), S.size()));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringUtilTest, Hex) { EXPECT_EQ(toHex(0xffff0001u), "0xffff0001"); }

TEST(StringUtilTest, Pad) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(StringUtilTest, CountCodeLines) {
  std::string Src = "int x;\n\n// comment only\n  \t\nint y; // tail\n";
  EXPECT_EQ(countCodeLines(Src), 2u);
}
