//===- SchedulerConformanceTest.cpp - Campaign scheduler conformance ---------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The scheduler's tentpole invariant: each of K interleaved campaigns
// produces byte-identical output to its solo run, at every backend x
// worker count x cache state. This suite pins that, plus the policy
// properties (round-robin fairness, the Reduction priority lane,
// yield-weighted budget shifting), the per-campaign accounting (the
// --stats breakdown sums to the global counters, and a shared cache
// attributes hits to the campaign that earned them), the prioritized
// dispatch permutation layer, and the --campaigns= spec grammar.
//
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "exec/OutcomeCache.h"
#include "exec/WorkerLoop.h"
#include "sched/CampaignScheduler.h"
#include "sched/CampaignSpec.h"
#include "sched/Campaigns.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

using namespace clfuzz;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Reads everything written to \p F and closes it.
std::string readAll(std::FILE *F) {
  std::fflush(F);
  std::rewind(F);
  std::string S;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

/// The three campaigns every identity test interleaves. The hunt
/// range covers a known wrong-code seed so findings are non-trivial.
DiffSpec diffSpec() {
  DiffSpec S;
  S.Gen.Seed = 9;
  return S;
}

HuntSpec huntSpec() {
  HuntSpec S;
  S.Mode = GenMode::Basic;
  S.ModeName = "BASIC";
  S.Seed = 1014;
  S.Count = 4;
  return S;
}

EmiSpec emiSpec() {
  EmiSpec S;
  S.Bases = 1;
  S.SeedBase = 4242;
  return S;
}

std::string describe(const ExecOptions &O) {
  return std::string(backendKindName(O.Backend)) + "/" +
         std::to_string(O.Threads) + "w" + (O.Cache ? "/cache" : "");
}

/// Solo reference run of one campaign task through runCampaignTask —
/// the exact loop the solo CLI commands execute.
std::string soloDiff(ExecBackend &B) {
  std::FILE *F = std::tmpfile();
  std::unique_ptr<CampaignTask> T = makeDiffTask(diffSpec(), B, F);
  runCampaignTask(*T);
  return readAll(F);
}

std::string soloHunt(ExecBackend &B, unsigned ShardSize) {
  std::FILE *F = std::tmpfile();
  HuntCampaign C = makeHuntCampaign(huntSpec(), ShardSize, B, F);
  runCampaignTask(*C.Main);
  return readAll(F);
}

std::string soloEmi(ExecBackend &B, unsigned ShardSize) {
  std::FILE *F = std::tmpfile();
  std::unique_ptr<CampaignTask> T = makeEmiTask(emiSpec(), ShardSize, B, F);
  runCampaignTask(*T);
  return readAll(F);
}

struct K3Out {
  std::string Diff, Hunt, Emi;
};

/// Runs diff+hunt+emi interleaved over one shared backend and returns
/// each campaign's report.
K3Out runK3(ExecBackend &B, unsigned ShardSize,
            std::shared_ptr<OutcomeCache> Cache,
            SchedPolicyKind Policy = SchedPolicyKind::RoundRobin) {
  SchedOptions SO;
  SO.Policy = Policy;
  SO.Cache = std::move(Cache);
  CampaignScheduler Sched(B, SO);
  std::FILE *FD = std::tmpfile(), *FH = std::tmpfile(),
            *FE = std::tmpfile();
  std::unique_ptr<CampaignTask> D = makeDiffTask(diffSpec(), B, FD);
  HuntCampaign H = makeHuntCampaign(huntSpec(), ShardSize, B, FH);
  std::unique_ptr<CampaignTask> E = makeEmiTask(emiSpec(), ShardSize, B, FE);
  Sched.add("d", *D);
  Sched.add("h", *H.Main);
  Sched.add("e", *E);
  Sched.runToCompletion();
  K3Out Out;
  Out.Diff = readAll(FD);
  Out.Hunt = readAll(FH);
  Out.Emi = readAll(FE);
  return Out;
}

/// Synthetic campaign for policy tests: counts down a fixed number of
/// steps, optionally producing one distinct witness per step.
class FakeTask final : public CampaignTask {
public:
  FakeTask(unsigned Total, bool Yielding = false,
           SchedLane Lane = SchedLane::Foreground)
      : Total(Total), Yielding(Yielding), Lane(Lane) {}

  bool done() const override { return Done >= Total; }
  void step() override {
    ++Done;
    if (Yielding)
      ++Witnesses;
  }
  SchedLane lane() const override { return Lane; }
  size_t distinctWitnesses() const override { return Witnesses; }
  size_t testsDone() const override { return Done; }

  unsigned Done = 0;

private:
  unsigned Total;
  bool Yielding;
  SchedLane Lane;
  size_t Witnesses = 0;
};

//===----------------------------------------------------------------------===//
// Prioritized dispatch: a permutation layer, never an outcome change
//===----------------------------------------------------------------------===//

TEST(SchedulerConformanceTest, PrioritizedDispatchMatchesSubmissionOrder) {
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  TestCase T = TestCase::fromGenerated(generateKernel(GenOptions()));
  std::vector<ExecJob> Jobs;
  for (int Id : {1, 12, 14, 19})
    for (bool Opt : {false, true})
      Jobs.push_back(
          ExecJob::onConfig(T, configById(Zoo, Id), Opt, RunSettings()));
  std::vector<ExecColumn> Cols = groupIntoColumns(Jobs);

  for (ExecOptions O :
       {ExecOptions::withBackend(BackendKind::Inline),
        ExecOptions::withBackend(BackendKind::Threads, 3),
        ExecOptions::withBackend(BackendKind::Procs, 2)}) {
    std::unique_ptr<ExecBackend> B = makeBackend(O);
    std::vector<RunOutcome> Ref = B->runColumns(Cols);
    // Uniform, ascending, descending, mixed: the outcome vector must
    // always come back in submission order.
    std::vector<std::vector<unsigned>> PrioritySets;
    PrioritySets.push_back(std::vector<unsigned>(Cols.size(), 7));
    std::vector<unsigned> Asc, Desc, Mixed;
    for (size_t I = 0; I != Cols.size(); ++I) {
      Asc.push_back(static_cast<unsigned>(I));
      Desc.push_back(static_cast<unsigned>(Cols.size() - I));
      Mixed.push_back(static_cast<unsigned>((I * 7 + 3) % 5));
    }
    PrioritySets.push_back(Asc);
    PrioritySets.push_back(Desc);
    PrioritySets.push_back(Mixed);
    for (const std::vector<unsigned> &P : PrioritySets) {
      std::vector<RunOutcome> Got = B->runColumnsPrioritized(Cols, P);
      ASSERT_EQ(Got.size(), Ref.size()) << describe(O);
      for (size_t I = 0; I != Ref.size(); ++I) {
        EXPECT_EQ(Got[I].Status, Ref[I].Status) << describe(O) << " " << I;
        EXPECT_EQ(Got[I].OutputHash, Ref[I].OutputHash)
            << describe(O) << " " << I;
        EXPECT_EQ(Got[I].Message, Ref[I].Message) << describe(O) << " " << I;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Policies
//===----------------------------------------------------------------------===//

TEST(SchedulerConformanceTest, RoundRobinSharesSlotsEqually) {
  FakeTask A(12), B(12), C(12);
  ExecOptions O;
  std::unique_ptr<ExecBackend> Backend = makeBackend(O);
  CampaignScheduler Sched(*Backend);
  Sched.add("a", A);
  Sched.add("b", B);
  Sched.add("c", C);
  Sched.runToCompletion();
  EXPECT_EQ(A.Done, 12u);
  EXPECT_EQ(B.Done, 12u);
  EXPECT_EQ(C.Done, 12u);
  // Strict cycling: every window of three grants covers all three.
  const std::vector<size_t> &Trace = Sched.allocationTrace();
  ASSERT_EQ(Trace.size(), 36u);
  for (size_t I = 0; I + 2 < Trace.size(); I += 3) {
    EXPECT_NE(Trace[I], Trace[I + 1]);
    EXPECT_NE(Trace[I + 1], Trace[I + 2]);
    EXPECT_NE(Trace[I], Trace[I + 2]);
  }
}

TEST(SchedulerConformanceTest, ReductionLanePreemptsForeground) {
  FakeTask Fg(5);
  FakeTask Lane(3, /*Yielding=*/false, SchedLane::Reduction);
  ExecOptions O;
  std::unique_ptr<ExecBackend> Backend = makeBackend(O);
  CampaignScheduler Sched(*Backend);
  Sched.add("fg", Fg);
  Sched.add("lane", Lane);
  Sched.runToCompletion();
  // The lane is ready from the start, so it must be fully drained
  // before any foreground grant.
  const std::vector<size_t> &Trace = Sched.allocationTrace();
  ASSERT_EQ(Trace.size(), 8u);
  EXPECT_EQ(Trace[0], 1u);
  EXPECT_EQ(Trace[1], 1u);
  EXPECT_EQ(Trace[2], 1u);
  for (size_t I = 3; I != Trace.size(); ++I)
    EXPECT_EQ(Trace[I], 0u);
}

TEST(SchedulerConformanceTest, YieldWeightedShiftsBudgetWithoutStarving) {
  // One campaign yields a fresh witness every step, the other is
  // barren. Over a fixed grant budget the yielding campaign must get
  // at least twice the slots, and the barren one must keep its
  // weight-1 floor (never starved).
  FakeTask Yielding(200, /*Yielding=*/true);
  FakeTask Barren(200);
  ExecOptions O;
  std::unique_ptr<ExecBackend> Backend = makeBackend(O);
  SchedOptions SO;
  SO.Policy = SchedPolicyKind::YieldWeighted;
  CampaignScheduler Sched(*Backend, SO);
  Sched.add("yielding", Yielding);
  Sched.add("barren", Barren);
  for (unsigned I = 0; I != 100; ++I)
    ASSERT_TRUE(Sched.stepOnce());
  size_t YieldingGrants = 0, BarrenGrants = 0;
  for (size_t Pick : Sched.allocationTrace())
    (Pick == 0 ? YieldingGrants : BarrenGrants)++;
  EXPECT_GE(YieldingGrants, 2 * BarrenGrants);
  EXPECT_GT(BarrenGrants, 0u);
  EXPECT_EQ(Sched.campaigns()[0].Stats.Witnesses, Yielding.Done);
}

//===----------------------------------------------------------------------===//
// The tentpole: interleaved == solo, byte for byte
//===----------------------------------------------------------------------===//

TEST(SchedulerConformanceTest, InterleavedMatchesSoloEverywhere) {
  for (ExecOptions Base :
       {ExecOptions::withBackend(BackendKind::Inline),
        ExecOptions::withBackend(BackendKind::Threads, 2),
        ExecOptions::withBackend(BackendKind::Procs, 2)}) {
    // Reference reports from solo runs at THIS backend (the hunt
    // summary names its backend, so solo output legitimately differs
    // across backends — the invariant is solo == interleaved at every
    // single one).
    std::unique_ptr<ExecBackend> RefBackend = makeBackend(Base);
    unsigned RefShard = Base.resolvedShardSize();
    std::string WantDiff = soloDiff(*RefBackend);
    std::string WantHunt = soloHunt(*RefBackend, RefShard);
    std::string WantEmi = soloEmi(*RefBackend, RefShard);
    ASSERT_NE(WantHunt.find("wrong code"), std::string::npos)
        << "hunt range must contain a witness for the test to bite";
    for (bool WithCache : {false, true}) {
      ExecOptions O = Base;
      std::shared_ptr<OutcomeCache> Cache;
      if (WithCache) {
        OutcomeCacheOptions CO;
        CO.Mode = CacheMode::Mem;
        CO.KeySalt = cacheKeySalt(O);
        Cache = makeOutcomeCache(CO);
        O.Cache = Cache;
      }
      std::unique_ptr<ExecBackend> B = makeBackend(O);
      K3Out Got = runK3(*B, O.resolvedShardSize(), Cache);
      EXPECT_EQ(Got.Diff, WantDiff) << describe(O);
      EXPECT_EQ(Got.Hunt, WantHunt) << describe(O);
      EXPECT_EQ(Got.Emi, WantEmi) << describe(O);
    }
  }

  // The policy only decides when a campaign steps, never what a step
  // does: yield-weighted interleaving is byte-identical too.
  ExecOptions Ref = ExecOptions::withBackend(BackendKind::Inline);
  std::unique_ptr<ExecBackend> RefBackend = makeBackend(Ref);
  unsigned RefShard = Ref.resolvedShardSize();
  std::string WantDiff = soloDiff(*RefBackend);
  std::string WantHunt = soloHunt(*RefBackend, RefShard);
  std::string WantEmi = soloEmi(*RefBackend, RefShard);
  std::unique_ptr<ExecBackend> B = makeBackend(Ref);
  K3Out Got = runK3(*B, RefShard, nullptr, SchedPolicyKind::YieldWeighted);
  EXPECT_EQ(Got.Diff, WantDiff) << "yield policy";
  EXPECT_EQ(Got.Hunt, WantHunt) << "yield policy";
  EXPECT_EQ(Got.Emi, WantEmi) << "yield policy";
}

#if defined(__unix__) || defined(__APPLE__)

TEST(SchedulerConformanceTest, InterleavedMatchesSoloOnRemoteFleet) {
  // Diff and EMI reports are backend-silent: the inline solo run is
  // their reference everywhere.
  ExecOptions Ref = ExecOptions::withBackend(BackendKind::Inline);
  std::unique_ptr<ExecBackend> RefBackend = makeBackend(Ref);
  unsigned RefShard = Ref.resolvedShardSize();
  std::string WantDiff = soloDiff(*RefBackend);
  std::string WantEmi = soloEmi(*RefBackend, RefShard);

  // A 2-worker fleet; the second worker dies mid-run (fault
  // injection), so the identity also covers requeue-after-loss.
  WorkerOptions W1O, W2O;
  W1O.Jobs = 2;
  W2O.Jobs = 2;
  W2O.DieAfterJobs = 40;
  WorkerServer W1(W1O), W2(W2O);
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.RemoteWorkers = {"127.0.0.1:" + std::to_string(W1.port()),
                     "127.0.0.1:" + std::to_string(W2.port())};
  O.RemoteHeartbeatMs = 2000;
  // The hunt summary names its backend, so its reference is a solo
  // hunt on this same fleet (worker loss and all).
  std::unique_ptr<ExecBackend> SoloB = makeBackend(O);
  std::string WantHunt = soloHunt(*SoloB, O.resolvedShardSize());
  std::unique_ptr<ExecBackend> B = makeBackend(O);
  K3Out Got = runK3(*B, O.resolvedShardSize(), nullptr);
  EXPECT_EQ(Got.Diff, WantDiff);
  EXPECT_EQ(Got.Hunt, WantHunt);
  EXPECT_EQ(Got.Emi, WantEmi);
  W1.stop();
  W2.stop();
}

TEST(SchedulerConformanceTest, FleetCountersSumPerCampaignToGlobal) {
  // Every fleet event (join adoption, drain, eviction, requeue)
  // happens inside RemoteBackend::run(), which the scheduler
  // serializes per step — so the per-campaign fleet_* deltas must sum
  // field-by-field to the global counter movement, exactly.
  WorkerOptions StaticO;
  StaticO.Jobs = 2;
  WorkerServer Static(StaticO);
  ASSERT_TRUE(Static.start());
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
  WorkerOptions DrainO;
  DrainO.Connect = "127.0.0.1:" + std::to_string(R->port());
  DrainO.Jobs = 2;
  DrainO.DrainAfterJobs = 10;
  WorkerServer Draining(DrainO);
  ASSERT_TRUE(Draining.start());

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.RemoteWorkers = {"127.0.0.1:" + std::to_string(Static.port())};
  O.Fleet = R;
  std::unique_ptr<ExecBackend> B = makeBackend(O);

  FleetCounters Before = fleetCounters();
  CampaignScheduler Sched(*B);
  std::FILE *FD = std::tmpfile(), *FH = std::tmpfile();
  std::unique_ptr<CampaignTask> D = makeDiffTask(diffSpec(), *B, FD);
  HuntCampaign H = makeHuntCampaign(huntSpec(), O.resolvedShardSize(), *B, FH);
  Sched.add("d", *D);
  Sched.add("h", *H.Main);
  Sched.runToCompletion();
  FleetCounters After = fleetCounters();

  FleetCounters Sum;
  for (const ScheduledCampaign &C : Sched.campaigns()) {
    Sum.Joins += C.Stats.Fleet.Joins;
    Sum.Leaves += C.Stats.Fleet.Leaves;
    Sum.Evictions += C.Stats.Fleet.Evictions;
    Sum.Redials += C.Stats.Fleet.Redials;
    Sum.Requeues += C.Stats.Fleet.Requeues;
  }
  EXPECT_EQ(Sum.Joins, After.Joins - Before.Joins);
  EXPECT_EQ(Sum.Leaves, After.Leaves - Before.Leaves);
  EXPECT_EQ(Sum.Evictions, After.Evictions - Before.Evictions);
  EXPECT_EQ(Sum.Redials, After.Redials - Before.Redials);
  EXPECT_EQ(Sum.Requeues, After.Requeues - Before.Requeues);
  // The rendezvous worker joined inside some campaign's step.
  EXPECT_GE(Sum.Joins, 1u);
  readAll(FD);
  readAll(FH);
}

#endif // unix

//===----------------------------------------------------------------------===//
// The reduction lane vs the solo threaded queue
//===----------------------------------------------------------------------===//

TEST(SchedulerConformanceTest, ReductionLaneMatchesSoloThreadedQueue) {
  HuntSpec Spec = huntSpec();
  Spec.Seed = 1016; // known wrong-code seed in BASIC
  Spec.Count = 1;
  Spec.Reduce = true;
  Spec.ReduceOpts.MaxCandidates = 20;

  // Solo: the historical mode, background reduction threads with a
  // private per-job backend. Same backend kind as the scheduled run,
  // since the hunt summary names it.
  ExecOptions RefO = ExecOptions::withBackend(BackendKind::Threads, 2);
  std::unique_ptr<ExecBackend> RefB = makeBackend(RefO);
  HuntSpec SoloSpec = Spec;
  SoloSpec.ReduceOpts.Exec = ExecOptions::withThreads(1);
  SoloSpec.ReduceWorkers = 2;
  std::FILE *FS = std::tmpfile();
  HuntCampaign Solo =
      makeHuntCampaign(SoloSpec, RefO.resolvedShardSize(), *RefB, FS);
  runCampaignTask(*Solo.Main);
  std::string Want = readAll(FS);
  ASSERT_NE(Want.find("wrong code"), std::string::npos);
  ASSERT_NE(Want.find("reduced in the background"), std::string::npos);

  // Scheduled: reductions drain through the Reduction lane on the
  // SHARED backend at elevated dispatch priority, interleaved with a
  // second campaign.
  ExecOptions O = ExecOptions::withBackend(BackendKind::Threads, 2);
  std::unique_ptr<ExecBackend> B = makeBackend(O);
  HuntSpec SchedSpec = Spec;
  SchedSpec.ReduceOpts.Backend = B.get();
  SchedSpec.ReduceOpts.DispatchPriority = 1;
  SchedSpec.ReduceWorkers = 0;
  std::FILE *FH = std::tmpfile(), *FD = std::tmpfile();
  HuntCampaign H =
      makeHuntCampaign(SchedSpec, O.resolvedShardSize(), *B, FH);
  ASSERT_NE(H.Lane, nullptr);
  std::unique_ptr<CampaignTask> D = makeDiffTask(diffSpec(), *B, FD);
  CampaignScheduler Sched(*B);
  Sched.add("h", *H.Main);
  Sched.add("h/reduce", *H.Lane);
  Sched.add("d", *D);
  Sched.runToCompletion();
  EXPECT_EQ(readAll(FH), Want);
  // The lane actually serviced the queue (one job per wrong cell).
  EXPECT_GT(Sched.campaigns()[1].Stats.Jobs, 0u);
  readAll(FD);
}

//===----------------------------------------------------------------------===//
// Accounting: the breakdown sums to the globals, hits attribute right
//===----------------------------------------------------------------------===//

TEST(SchedulerConformanceTest, SharedCacheAttributesHitsPerCampaign) {
  // Two identical diff campaigns share one cache: the first pays the
  // misses, the second is served entirely from cache — and the
  // breakdown must say so, not aggregate globally.
  ExecOptions O;
  OutcomeCacheOptions CO;
  CO.Mode = CacheMode::Mem;
  CO.KeySalt = cacheKeySalt(O);
  std::shared_ptr<OutcomeCache> Cache = makeOutcomeCache(CO);
  O.Cache = Cache;
  std::unique_ptr<ExecBackend> B = makeBackend(O);

  SchedOptions SO;
  SO.Cache = Cache;
  CampaignScheduler Sched(*B, SO);
  std::FILE *FA = std::tmpfile(), *FB = std::tmpfile();
  std::unique_ptr<CampaignTask> A = makeDiffTask(diffSpec(), *B, FA);
  std::unique_ptr<CampaignTask> C = makeDiffTask(diffSpec(), *B, FB);
  Sched.add("first", *A);
  Sched.add("second", *C);
  Sched.runToCompletion();

  const CampaignStats &SA = Sched.campaigns()[0].Stats;
  const CampaignStats &SB = Sched.campaigns()[1].Stats;
  EXPECT_EQ(SA.Cache.Hits, 0u);
  EXPECT_GT(SA.Cache.Misses, 0u);
  EXPECT_EQ(SB.Cache.Misses, 0u);
  EXPECT_EQ(SB.Cache.Hits, SA.Cache.Misses);
  // Identical campaigns, identical reports (the cached run included).
  EXPECT_EQ(readAll(FA), readAll(FB));
  // Per-campaign deltas sum to the shared cache's own counters.
  OutcomeCacheStats Global = Cache->stats();
  EXPECT_EQ(SA.Cache.Hits + SB.Cache.Hits, Global.Hits);
  EXPECT_EQ(SA.Cache.Misses + SB.Cache.Misses, Global.Misses);
  EXPECT_EQ(SA.Cache.Coalesced + SB.Cache.Coalesced, Global.Coalesced);
}

TEST(SchedulerConformanceTest, StatsBreakdownSumsToGlobalCounters) {
  ExecOptions O;
  std::unique_ptr<ExecBackend> B = makeBackend(O);
  VmCounters Before = vmCounters();
  CampaignScheduler Sched(*B);
  std::FILE *FD = std::tmpfile(), *FH = std::tmpfile();
  std::unique_ptr<CampaignTask> D = makeDiffTask(diffSpec(), *B, FD);
  HuntCampaign H = makeHuntCampaign(huntSpec(), O.resolvedShardSize(), *B, FH);
  Sched.add("d", *D);
  Sched.add("h", *H.Main);
  Sched.runToCompletion();
  VmCounters After = vmCounters();

  uint64_t SumInstr = 0, SumLaunches = 0, SumFused = 0, SumReuses = 0;
  size_t SumSteps = 0;
  for (const ScheduledCampaign &C : Sched.campaigns()) {
    SumInstr += C.Stats.VmInstructions;
    SumLaunches += C.Stats.VmLaunches;
    SumFused += C.Stats.VmFused;
    SumReuses += C.Stats.VmEngineReuses;
    SumSteps += C.Stats.Steps;
    EXPECT_GT(C.Stats.Jobs, 0u) << C.Name;
    EXPECT_GT(C.Stats.Tests, 0u) << C.Name;
  }
  // Every VM launch during the run happened inside some campaign's
  // step, so the attributed deltas sum exactly to the global deltas.
  EXPECT_EQ(SumInstr, After.Instructions - Before.Instructions);
  EXPECT_EQ(SumLaunches, After.Launches - Before.Launches);
  EXPECT_EQ(SumFused, After.FusedExecuted - Before.FusedExecuted);
  EXPECT_EQ(SumReuses, After.EngineReuses - Before.EngineReuses);
  EXPECT_EQ(SumSteps, Sched.allocationTrace().size());
  readAll(FD);
  readAll(FH);
}

//===----------------------------------------------------------------------===//
// --campaigns= grammar
//===----------------------------------------------------------------------===//

TEST(CampaignSpecTest, ParsesInlineSpec) {
  std::vector<CampaignDecl> Ds;
  std::string Err;
  ASSERT_TRUE(parseCampaignSpec(
      "hunt(mode=BASIC,count=5,reduce,name=h); diff(seed=9) ;emi", Ds, Err))
      << Err;
  ASSERT_EQ(Ds.size(), 3u);
  EXPECT_EQ(Ds[0].Type, "hunt");
  EXPECT_EQ(Ds[0].Name, "h");
  EXPECT_EQ(Ds[0].Params.at("count"), "5");
  EXPECT_EQ(Ds[0].Params.at("reduce"), "1"); // bare flag
  EXPECT_EQ(Ds[1].Type, "diff");
  EXPECT_EQ(Ds[1].Name, "c1-diff"); // default name
  EXPECT_EQ(Ds[2].Type, "emi");
  EXPECT_TRUE(Ds[2].Params.empty()); // bare type, all defaults
}

TEST(CampaignSpecTest, RejectsBadSpecs) {
  std::vector<CampaignDecl> Ds;
  std::string Err;
  EXPECT_FALSE(parseCampaignSpec("jog(count=5)", Ds, Err));
  EXPECT_NE(Err.find("unknown campaign type"), std::string::npos);
  Ds.clear();
  EXPECT_FALSE(parseCampaignSpec("hunt(count=5", Ds, Err));
  EXPECT_NE(Err.find("missing ')'"), std::string::npos);
  Ds.clear();
  EXPECT_FALSE(parseCampaignSpec(" ; ;", Ds, Err));
  EXPECT_NE(Err.find("empty"), std::string::npos);
  Ds.clear();
  EXPECT_FALSE(parseCampaignSpec("@/no/such/file", Ds, Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

TEST(CampaignSpecTest, LoadsFileWithCommentsAndLines) {
  const char *Path = "campaignspec_test.tmp";
  std::FILE *F = std::fopen(Path, "w");
  ASSERT_NE(F, nullptr);
  std::fputs("# fleet plan\n"
             "hunt(mode=BASIC, count=10)  # the main hunt\n"
             "\n"
             "diff(seed=9); emi(bases=1)\n",
             F);
  std::fclose(F);
  std::vector<CampaignDecl> Ds;
  std::string Err;
  ASSERT_TRUE(parseCampaignSpec(std::string("@") + Path, Ds, Err)) << Err;
  std::remove(Path);
  ASSERT_EQ(Ds.size(), 3u);
  EXPECT_EQ(Ds[0].Type, "hunt");
  EXPECT_EQ(Ds[0].Params.at("count"), "10");
  EXPECT_EQ(Ds[1].Type, "diff");
  EXPECT_EQ(Ds[2].Type, "emi");
}

} // namespace
