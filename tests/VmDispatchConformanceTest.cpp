//===- VmDispatchConformanceTest.cpp - Interpreter fast-path identity ------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The interpreter's performance machinery — computed-goto dispatch,
/// superinstruction fusion, engine reuse across launches — is only
/// admissible because it is observationally invisible: every
/// combination must produce bit-identical launch results (status,
/// message, step count, race report, final buffer bytes). These tests
/// pin that contract directly at the VM layer, including the awkward
/// corners: a step budget expiring on the seam inside a fused pair,
/// and engine reuse immediately after a Trap or Timeout abandoned a
/// launch mid-flight with live operand stacks and dirty arenas.
///
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"
#include "minicl/Sema.h"
#include "vm/Codegen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <memory>

using namespace clfuzz;

namespace {

/// Everything observable about one launch.
struct Snapshot {
  LaunchStatus Status = LaunchStatus::InvalidLaunch;
  std::string Message;
  uint64_t Steps = 0;
  bool RaceFound = false;
  std::string RaceMessage;
  std::vector<std::vector<uint8_t>> Buffers;

  bool operator==(const Snapshot &O) const {
    return Status == O.Status && Message == O.Message && Steps == O.Steps &&
           RaceFound == O.RaceFound && RaceMessage == O.RaceMessage &&
           Buffers == O.Buffers;
  }
};

/// Saves and restores the process-wide interpreter tuning so a failing
/// assertion cannot leak a mode into unrelated tests.
class VmConformanceTest : public ::testing::Test {
protected:
  void SetUp() override {
    SavedDispatch = vmDispatchMode();
    SavedFusion = vmFusionEnabled();
  }
  void TearDown() override {
    setVmDispatchMode(SavedDispatch);
    setVmFusionEnabled(SavedFusion);
  }

private:
  VmDispatch SavedDispatch = VmDispatch::Switch;
  bool SavedFusion = true;
};

/// A compiled module plus the ASTContext that owns the Type objects
/// its instructions reference — the context must outlive every launch.
struct Compiled {
  std::unique_ptr<ASTContext> Ctx;
  CompiledModule Module;
};

Compiled compile(const std::string &Source, bool Fused) {
  Compiled C;
  C.Ctx = std::make_unique<ASTContext>();
  DiagEngine Diags;
  EXPECT_TRUE(parseProgram(Source, *C.Ctx, Diags)) << Diags.str();
  EXPECT_TRUE(checkProgram(*C.Ctx, Diags)) << Diags.str();
  bool Prev = vmFusionEnabled();
  setVmFusionEnabled(Fused);
  CodegenResult CR = compileToBytecode(*C.Ctx);
  setVmFusionEnabled(Prev);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  C.Module = std::move(CR.Module);
  return C;
}

std::vector<Buffer> makeBuffers(const CompiledModule &M, uint64_t OutWords) {
  std::vector<Buffer> Buffers;
  Buffer Out;
  Out.Space = AddressSpace::Global;
  Out.Bytes.assign(OutWords * 8, 0);
  Buffers.push_back(std::move(Out));
  return Buffers;
}

/// Launches \p M on \p Inst (or a per-call fresh instance when null)
/// and snapshots everything observable.
Snapshot launchAndSnapshot(const CompiledModule &M, const NDRange &Range,
                           const LaunchOptions &Base,
                           VmInstance *Inst = nullptr) {
  std::vector<Buffer> Buffers = makeBuffers(M, Range.globalLinear());
  std::vector<KernelArg> Args;
  Args.resize(M.kernel().Params.size(), KernelArg::buffer(0));
  LaunchOptions Opts = Base;
  Opts.Range = Range;

  LaunchResult LR;
  if (Inst) {
    LR = Inst->launch(M, Buffers, Args, Opts);
  } else {
    VmInstance Fresh;
    LR = Fresh.launch(M, Buffers, Args, Opts);
  }

  Snapshot S;
  S.Status = LR.Status;
  S.Message = LR.Message;
  S.Steps = LR.StepsExecuted;
  S.RaceFound = LR.RaceFound;
  S.RaceMessage = LR.RaceMessage;
  for (const Buffer &B : Buffers)
    S.Buffers.push_back(B.Bytes);
  return S;
}

NDRange grid(uint32_t Global, uint32_t Local) {
  NDRange R;
  R.Global[0] = Global;
  R.Local[0] = Local;
  return R;
}

/// Kernels chosen to cover every fused pair (frame loads, constant
/// operands, comparison-into-branch, memory loads feeding converts)
/// plus the scheduler-visible features (barriers, atomics) and both
/// abnormal exits.
const char *ArithKernel =
    "kernel void k(global ulong *out) {\n"
    "  ulong acc = 1u;\n"
    "  int i = 0;\n"
    "  for (i = 0; i < 153; i = i + 1) {\n"
    "    acc = acc * 3u + (ulong)i;\n"
    "    if (acc > 1000000u) acc = acc % 97u;\n"
    "  }\n"
    "  out[get_global_id(0)] = acc + get_global_id(0);\n"
    "}\n";

const char *VectorKernel =
    "kernel void k(global ulong *out) {\n"
    "  int4 v = (int4)(1, 2, 3, 4);\n"
    "  int4 w = v * v + 7;\n"
    "  uint4 u = convert_uint4(w);\n"
    "  out[get_global_id(0)] =\n"
    "      (ulong)(u.x + u.y + u.z + u.w) + get_global_id(0);\n"
    "}\n";

const char *AtomicBarrierKernel =
    "kernel void k(global ulong *out) {\n"
    "  local uint r[1];\n"
    "  if (get_local_id(0) == 0u) r[0] = 0u;\n"
    "  barrier(CLK_LOCAL_MEM_FENCE);\n"
    "  atomic_add(&r[0], (uint)get_local_id(0) * 2u + 1u);\n"
    "  barrier(CLK_LOCAL_MEM_FENCE);\n"
    "  out[get_global_id(0)] = r[0] + get_global_id(0);\n"
    "}\n";

const char *TrapKernel =
    "kernel void k(global ulong *out) {\n"
    "  int i = 0;\n"
    "  int acc = 1;\n"
    "  for (i = 0; i < 40; i = i + 1) acc = acc + i * i;\n"
    "  out[1000000] = (ulong)acc;\n"
    "}\n";

const char *SpinKernel =
    "kernel void k(global ulong *out) {\n"
    "  uint i = 0u;\n"
    "  while (i < 400000000u) i = i + 1u;\n"
    "  out[0] = i;\n"
    "}\n";

struct Workload {
  const char *Name;
  const char *Source;
  NDRange Range;
  uint64_t SchedulerSeed;
};

std::vector<Workload> workloads() {
  return {
      {"arith", ArithKernel, grid(8, 4), 11},
      {"vector", VectorKernel, grid(4, 4), 23},
      {"atomic", AtomicBarrierKernel, grid(16, 8), 5},
      {"trap", TrapKernel, grid(2, 2), 3},
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Dispatch strategies
//===----------------------------------------------------------------------===//

TEST_F(VmConformanceTest, SwitchAndGotoAreBitIdentical) {
  if (!vmHasGotoDispatch())
    GTEST_SKIP() << "computed-goto dispatch not compiled in";
  for (const Workload &W : workloads()) {
    Compiled M = compile(W.Source, /*Fused=*/true);
    LaunchOptions Opts;
    Opts.SchedulerSeed = W.SchedulerSeed;
    setVmDispatchMode(VmDispatch::Switch);
    Snapshot SwitchSnap = launchAndSnapshot(M.Module, W.Range, Opts);
    setVmDispatchMode(VmDispatch::Goto);
    Snapshot GotoSnap = launchAndSnapshot(M.Module, W.Range, Opts);
    EXPECT_TRUE(SwitchSnap == GotoSnap) << W.Name;
  }
}

TEST_F(VmConformanceTest, GotoRequestDegradesToSwitchWhenUnavailable) {
  setVmDispatchMode(VmDispatch::Goto);
  if (vmHasGotoDispatch())
    EXPECT_EQ(vmDispatchMode(), VmDispatch::Goto);
  else
    EXPECT_EQ(vmDispatchMode(), VmDispatch::Switch);
}

//===----------------------------------------------------------------------===//
// Superinstruction fusion
//===----------------------------------------------------------------------===//

TEST_F(VmConformanceTest, FusedAndUnfusedAreBitIdentical) {
  for (const Workload &W : workloads()) {
    Compiled Fused = compile(W.Source, /*Fused=*/true);
    Compiled Plain = compile(W.Source, /*Fused=*/false);
    LaunchOptions Opts;
    Opts.SchedulerSeed = W.SchedulerSeed;
    Snapshot A = launchAndSnapshot(Fused.Module, W.Range, Opts);
    Snapshot B = launchAndSnapshot(Plain.Module, W.Range, Opts);
    EXPECT_TRUE(A == B) << W.Name;
  }
}

TEST_F(VmConformanceTest, PeepholeActuallyFusesTheHotKernel) {
  // The identity tests above would pass vacuously if the peephole
  // never fired; pin that the arithmetic kernel genuinely fuses.
  Compiled M = compile(ArithKernel, /*Fused=*/false);
  EXPECT_GT(fuseSuperinstructions(M.Module), 0u);
}

TEST_F(VmConformanceTest, StepBudgetSeamSweep) {
  // Exhaust the budget at every possible point of the kernel,
  // including mid-superinstruction: a fused pair interrupted after its
  // first half must leave exactly the state the unfused program would
  // (same steps, same buffer bytes), or the Timeout outcome and any
  // later resumed launch would diverge between fused and plain code.
  Compiled Fused = compile(ArithKernel, /*Fused=*/true);
  Compiled Plain = compile(ArithKernel, /*Fused=*/false);
  NDRange Range = grid(2, 2);
  for (uint64_t Budget = 1; Budget <= 600; Budget += 7) {
    LaunchOptions Opts;
    Opts.StepBudget = Budget;
    Snapshot A = launchAndSnapshot(Fused.Module, Range, Opts);
    Snapshot B = launchAndSnapshot(Plain.Module, Range, Opts);
    EXPECT_TRUE(A == B) << "budget " << Budget;
  }
}

//===----------------------------------------------------------------------===//
// Engine reuse
//===----------------------------------------------------------------------===//

TEST_F(VmConformanceTest, ReusedEngineMatchesFreshEngines) {
  VmInstance Reused;
  for (int Round = 0; Round != 3; ++Round) {
    for (const Workload &W : workloads()) {
      Compiled M = compile(W.Source, /*Fused=*/true);
      LaunchOptions Opts;
      Opts.SchedulerSeed = W.SchedulerSeed + Round;
      Snapshot OnReused = launchAndSnapshot(M.Module, W.Range, Opts, &Reused);
      Snapshot OnFresh = launchAndSnapshot(M.Module, W.Range, Opts);
      EXPECT_TRUE(OnReused == OnFresh) << W.Name << " round " << Round;
    }
  }
}

TEST_F(VmConformanceTest, ReuseAfterTrapIsClean) {
  // A trap abandons the launch with operand stacks, frames and arenas
  // mid-flight; the next launch on the same engine must behave as if
  // the engine were fresh.
  VmInstance Reused;
  Compiled Trap = compile(TrapKernel, /*Fused=*/true);
  Snapshot T =
      launchAndSnapshot(Trap.Module, grid(2, 2), LaunchOptions(), &Reused);
  ASSERT_EQ(T.Status, LaunchStatus::Trap);

  Compiled M = compile(ArithKernel, /*Fused=*/true);
  LaunchOptions Opts;
  Opts.SchedulerSeed = 11;
  Snapshot After = launchAndSnapshot(M.Module, grid(8, 4), Opts, &Reused);
  Snapshot Fresh = launchAndSnapshot(M.Module, grid(8, 4), Opts);
  EXPECT_TRUE(After == Fresh);
}

TEST_F(VmConformanceTest, ReuseAfterTimeoutIsClean) {
  VmInstance Reused;
  Compiled Spin = compile(SpinKernel, /*Fused=*/true);
  LaunchOptions Tight;
  Tight.StepBudget = 1000;
  Snapshot T = launchAndSnapshot(Spin.Module, grid(4, 4), Tight, &Reused);
  ASSERT_EQ(T.Status, LaunchStatus::Timeout);

  Compiled M = compile(AtomicBarrierKernel, /*Fused=*/true);
  LaunchOptions Opts;
  Opts.SchedulerSeed = 5;
  Snapshot After = launchAndSnapshot(M.Module, grid(16, 8), Opts, &Reused);
  Snapshot Fresh = launchAndSnapshot(M.Module, grid(16, 8), Opts);
  EXPECT_TRUE(After == Fresh);
}

TEST_F(VmConformanceTest, ReuseCountersAdvance) {
  VmInstance Reused;
  Compiled M = compile(ArithKernel, /*Fused=*/true);
  VmCounters Before = vmCounters();
  LaunchOptions Opts;
  launchAndSnapshot(M.Module, grid(4, 4), Opts, &Reused);
  launchAndSnapshot(M.Module, grid(4, 4), Opts, &Reused);
  VmCounters After = vmCounters();
  EXPECT_EQ(After.Launches, Before.Launches + 2);
  EXPECT_GE(After.EngineReuses, Before.EngineReuses + 1);
  EXPECT_GT(After.Instructions, Before.Instructions);
  EXPECT_GT(After.FusedExecuted, Before.FusedExecuted);
}
