//===- ReducerTest.cpp - Test-case reducer tests ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "oracle/Reducer.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

TestCase paddedCommaBugKernel() {
  // The Figure 2(f) comma bug buried in unrelated statements.
  TestCase T;
  T.Name = "padded comma bug";
  T.Source = "int helper(int v) { return v * 3 + 1; }\n"
             "kernel void k(global ulong *out) {\n"
             "  int noise0 = 11;\n"
             "  int noise1 = helper(noise0);\n"
             "  for (int i = 0; i < 4; i++) noise1 += i;\n"
             "  if (noise1 > 100) { noise0 = 2; } else { noise0 = 3; }\n"
             "  short x = 1; uint y;\n"
             "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
             "  int noise2 = noise0 + noise1;\n"
             "  noise2 = noise2 * 2;\n"
             "  out[get_global_id(0)] = y;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

} // namespace

TEST(ReducerTest, ShrinksCommaBugWitness) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Oclgrind = configById(Registry, 19);
  TestCase Input = paddedCommaBugKernel();

  // Sanity: the bug manifests on configuration 19.
  RunOutcome Ref = runTestOnReference(Input, false);
  RunOutcome Buggy = runTestOnConfig(Input, Oclgrind, false);
  ASSERT_TRUE(Ref.ok() && Buggy.ok());
  ASSERT_NE(Ref.OutputHash, Buggy.OutputHash);

  auto StillInteresting = [&](const TestCase &Candidate) {
    RunOutcome R = runTestOnReference(Candidate, false);
    RunOutcome B = runTestOnConfig(Candidate, Oclgrind, false);
    return R.ok() && B.ok() && R.OutputHash != B.OutputHash;
  };

  ReducerOptions Opts;
  ReduceStats Stats;
  TestCase Reduced = reduceTest(Input, StillInteresting, Opts, &Stats);

  EXPECT_LT(Stats.FinalLines, Stats.InitialLines);
  EXPECT_GT(Stats.CandidatesKept, 0u);
  // The witness must still be interesting after reduction.
  EXPECT_TRUE(StillInteresting(Reduced)) << Reduced.Source;
  // The noise should be gone; the comma must remain.
  EXPECT_EQ(Reduced.Source.find("helper"), std::string::npos)
      << Reduced.Source;
  EXPECT_EQ(Reduced.Source.find("noise2 * 2"), std::string::npos)
      << Reduced.Source;
  EXPECT_NE(Reduced.Source.find("x, 1"), std::string::npos)
      << Reduced.Source;
}

TEST(ReducerTest, OracleFormMatchesClosureForm) {
  // The backend-schedulable DifferentialReductionOracle expresses the
  // canonical "still miscompiles" predicate as probe jobs; it must
  // walk the identical reduction sequence as the closure form of the
  // same predicate.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Oclgrind = configById(Registry, 19);
  TestCase Input = paddedCommaBugKernel();

  auto StillInteresting = [&](const TestCase &Candidate) {
    RunOutcome R = runTestOnReference(Candidate, false);
    RunOutcome B = runTestOnConfig(Candidate, Oclgrind, false);
    return R.ok() && B.ok() && R.OutputHash != B.OutputHash;
  };

  ReducerOptions Opts;
  ReduceStats ClosureStats, OracleStats;
  TestCase ViaClosure =
      reduceTest(Input, StillInteresting, Opts, &ClosureStats);
  DifferentialReductionOracle Oracle(Oclgrind, /*Opt=*/false);
  TestCase ViaOracle = reduceTest(Input, Oracle, Opts, &OracleStats);

  EXPECT_EQ(ViaClosure.Source, ViaOracle.Source);
  EXPECT_EQ(ClosureStats.CandidatesTried, OracleStats.CandidatesTried);
  EXPECT_EQ(ClosureStats.CandidatesKept, OracleStats.CandidatesKept);
  EXPECT_EQ(ClosureStats.FinalLines, OracleStats.FinalLines);
}

TEST(ReducerTest, RespectsCandidateBudget) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Oclgrind = configById(Registry, 19);
  TestCase Input = paddedCommaBugKernel();
  auto StillInteresting = [&](const TestCase &Candidate) {
    RunOutcome R = runTestOnReference(Candidate, false);
    RunOutcome B = runTestOnConfig(Candidate, Oclgrind, false);
    return R.ok() && B.ok() && R.OutputHash != B.OutputHash;
  };
  ReducerOptions Opts;
  Opts.MaxCandidates = 3;
  ReduceStats Stats;
  reduceTest(Input, StillInteresting, Opts, &Stats);
  EXPECT_LE(Stats.CandidatesTried, 3u);
}

TEST(ReducerTest, KeepsRaceFreedom) {
  // A reduction step that would introduce a race (deleting the barrier
  // between write and read of local memory) must be rejected by the
  // concurrency-aware validation even if the predicate would accept.
  TestCase T;
  T.Name = "barrier guard";
  T.Source = "kernel void k(global ulong *out) {\n"
             "  local uint A[4];\n"
             "  A[get_local_id(0)] = (uint)get_local_id(0);\n"
             "  barrier(CLK_LOCAL_MEM_FENCE);\n"
             "  out[get_global_id(0)] = A[3u - get_local_id(0)];\n"
             "}\n";
  T.Range.Global[0] = 4;
  T.Range.Local[0] = 4;
  BufferSpec Out;
  Out.InitBytes.assign(32, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);

  auto AlwaysInteresting = [](const TestCase &) { return true; };
  ReducerOptions Opts;
  TestCase Reduced = reduceTest(T, AlwaysInteresting, Opts);
  // The barrier must survive if the local accesses do; deleting only
  // the barrier would race.
  bool HasLocalWrite =
      Reduced.Source.find("A[get_local_id(0)] =") != std::string::npos;
  bool HasLocalRead =
      Reduced.Source.find("A[3u - get_local_id(0)]") != std::string::npos;
  if (HasLocalWrite && HasLocalRead)
    EXPECT_NE(Reduced.Source.find("barrier"), std::string::npos)
        << Reduced.Source;
}
