//===- OracleTest.cpp - Voting and classification tests ----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

RunOutcome okWith(uint64_t Hash) {
  RunOutcome O;
  O.Status = RunStatus::Ok;
  O.OutputHash = Hash;
  return O;
}

RunOutcome failWith(RunStatus S) {
  RunOutcome O;
  O.Status = S;
  return O;
}

} // namespace

TEST(OracleTest, MajorityRequiresThreeAgreeing) {
  std::vector<RunOutcome> Two = {okWith(1), okWith(1), okWith(2)};
  EXPECT_FALSE(majorityOutput(Two).has_value());
  std::vector<RunOutcome> Three = {okWith(1), okWith(1), okWith(1),
                                   okWith(2)};
  auto M = majorityOutput(Three);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(*M, 1u);
}

TEST(OracleTest, TiesHaveNoMajority) {
  std::vector<RunOutcome> Tie = {okWith(1), okWith(1), okWith(1),
                                 okWith(2), okWith(2), okWith(2)};
  EXPECT_FALSE(majorityOutput(Tie).has_value());
}

TEST(OracleTest, FailuresDoNotVote) {
  std::vector<RunOutcome> Mixed = {
      okWith(1), okWith(1), okWith(1), failWith(RunStatus::Crash),
      failWith(RunStatus::BuildFailure), failWith(RunStatus::Timeout),
      okWith(9)};
  auto M = majorityOutput(Mixed);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(*M, 1u);

  std::vector<Verdict> V = classifyAgainstMajority(Mixed);
  EXPECT_EQ(V[0], Verdict::Pass);
  EXPECT_EQ(V[3], Verdict::Crash);
  EXPECT_EQ(V[4], Verdict::BuildFailure);
  EXPECT_EQ(V[5], Verdict::Timeout);
  EXPECT_EQ(V[6], Verdict::Wrong);
}

TEST(OracleTest, NoMajorityMeansNoWrongVerdicts) {
  std::vector<RunOutcome> Split = {okWith(1), okWith(2)};
  std::vector<Verdict> V = classifyAgainstMajority(Split);
  EXPECT_EQ(V[0], Verdict::NoMajority);
  EXPECT_EQ(V[1], Verdict::NoMajority);
}

TEST(OracleTest, OutcomeCountsMath) {
  OutcomeCounts C;
  C.add(Verdict::Wrong);
  C.add(Verdict::Pass);
  C.add(Verdict::Pass);
  C.add(Verdict::Pass);
  C.add(Verdict::Crash);
  EXPECT_EQ(C.total(), 5u);
  EXPECT_NEAR(C.wrongPct(), 100.0 * 1 / 4, 1e-9);
  EXPECT_NEAR(C.failureFraction(), 2.0 / 5, 1e-9);
}

TEST(OracleTest, EmiAllAgreeIsStable) {
  std::vector<RunOutcome> Vs = {okWith(7), okWith(7), okWith(7)};
  EmiBaseVerdict V = classifyEmiVariants(Vs);
  EXPECT_TRUE(V.Stable);
  EXPECT_FALSE(V.Wrong);
  EXPECT_FALSE(V.BadBase);
}

TEST(OracleTest, EmiDisagreementIsWrong) {
  std::vector<RunOutcome> Vs = {okWith(7), okWith(8), okWith(7)};
  EmiBaseVerdict V = classifyEmiVariants(Vs);
  EXPECT_TRUE(V.Wrong);
  EXPECT_FALSE(V.Stable);
}

TEST(OracleTest, EmiAllFailuresIsBadBase) {
  std::vector<RunOutcome> Vs = {failWith(RunStatus::Crash),
                                failWith(RunStatus::BuildFailure)};
  EmiBaseVerdict V = classifyEmiVariants(Vs);
  EXPECT_TRUE(V.BadBase);
  EXPECT_FALSE(V.Wrong);
  EXPECT_FALSE(V.InducedCrash) << "bad bases report nothing else";
}

TEST(OracleTest, EmiInducedFailuresRecorded) {
  std::vector<RunOutcome> Vs = {okWith(7), failWith(RunStatus::Crash),
                                okWith(7),
                                failWith(RunStatus::Timeout)};
  EmiBaseVerdict V = classifyEmiVariants(Vs);
  EXPECT_FALSE(V.BadBase);
  EXPECT_TRUE(V.InducedCrash);
  EXPECT_TRUE(V.InducedTimeout);
  EXPECT_FALSE(V.InducedBF);
  EXPECT_FALSE(V.Stable) << "failures preclude stability";
  EXPECT_FALSE(V.Wrong);
}
