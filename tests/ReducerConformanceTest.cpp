//===- ReducerConformanceTest.cpp - Reducer backend conformance --------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Reduction is a pipeline workload, so it inherits the pipeline's
// contract: the backend choice is unobservable in results. This suite
// pins that the reduced source, every stat, and the full JSONL trace
// are bit-identical across inline / threads(1,2,8) / procs at any
// worker count, with pipelining on or off - plus the properties only
// the reducer provides: crashy-witness reduction to completion under
// process isolation, multi-mutation escalation when single steps
// stall, and the dead-work cache that skips duplicate candidates.
//
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "oracle/Reducer.h"
#include "oracle/ReductionQueue.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

/// Every backend configuration a reduction must be identical on.
std::vector<ExecOptions> reducerMatrix() {
  std::vector<ExecOptions> Matrix;
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Inline));
  for (unsigned Threads : {1u, 2u, 8u})
    Matrix.push_back(ExecOptions::withBackend(BackendKind::Threads, Threads));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Procs, 2));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Procs, 5));
  return Matrix;
}

std::string describe(const ExecOptions &O) {
  return std::string(backendKindName(O.Backend)) + "/" +
         std::to_string(O.Threads) + "w";
}

TestCase paddedCommaBugKernel() {
  // The Figure 2(f) comma bug buried in unrelated statements.
  TestCase T;
  T.Name = "padded comma bug";
  T.Source = "int helper(int v) { return v * 3 + 1; }\n"
             "kernel void k(global ulong *out) {\n"
             "  int noise0 = 11;\n"
             "  int noise1 = helper(noise0);\n"
             "  for (int i = 0; i < 4; i++) noise1 += i;\n"
             "  if (noise1 > 100) { noise0 = 2; } else { noise0 = 3; }\n"
             "  short x = 1; uint y;\n"
             "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
             "  int noise2 = noise0 + noise1;\n"
             "  noise2 = noise2 * 2;\n"
             "  out[get_global_id(0)] = y;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

/// A small single-kernel test case over one 8-byte output buffer.
TestCase kernelFromSource(const char *Name, std::string Source) {
  TestCase T;
  T.Name = Name;
  T.Source = std::move(Source);
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

struct ReductionRun {
  TestCase Reduced;
  ReduceStats Stats;
  std::string Trace;
};

ReductionRun runReduction(const TestCase &Witness,
                          const ReductionOracle &Oracle, ExecOptions Exec,
                          bool Pipeline = true,
                          unsigned MaxCandidates = 400) {
  ReductionRun R;
  ReducerOptions Opts;
  Opts.Exec = Exec;
  Opts.Pipeline = Pipeline;
  Opts.MaxCandidates = MaxCandidates;
  Opts.Trace = [&R](const ReduceTraceEvent &E) {
    R.Trace += renderReduceTraceJsonl(E);
  };
  R.Reduced = reduceTest(Witness, Oracle, Opts, &R.Stats);
  return R;
}

void expectSameRun(const ReductionRun &A, const ReductionRun &B,
                   const std::string &Ctx) {
  EXPECT_EQ(A.Reduced.Source, B.Reduced.Source) << Ctx;
  EXPECT_EQ(A.Stats.CandidatesTried, B.Stats.CandidatesTried) << Ctx;
  EXPECT_EQ(A.Stats.CandidatesKept, B.Stats.CandidatesKept) << Ctx;
  EXPECT_EQ(A.Stats.CandidatesSkipped, B.Stats.CandidatesSkipped) << Ctx;
  EXPECT_EQ(A.Stats.Rounds, B.Stats.Rounds) << Ctx;
  EXPECT_EQ(A.Stats.Escalations, B.Stats.Escalations) << Ctx;
  EXPECT_EQ(A.Stats.InitialLines, B.Stats.InitialLines) << Ctx;
  EXPECT_EQ(A.Stats.FinalLines, B.Stats.FinalLines) << Ctx;
  EXPECT_EQ(A.Trace, B.Trace) << Ctx;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bit-identity across backends, worker counts and pipelining
//===----------------------------------------------------------------------===//

TEST(ReducerConformanceTest, ReductionIdenticalOnAllBackends) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19),
                                     /*Opt=*/false);
  TestCase Witness = paddedCommaBugKernel();

  ReductionRun Reference = runReduction(
      Witness, Oracle, ExecOptions::withBackend(BackendKind::Inline));
  EXPECT_TRUE(Reference.Stats.WitnessWasInteresting);
  EXPECT_LT(Reference.Stats.FinalLines, Reference.Stats.InitialLines);
  // The comma bug itself must survive the shrink.
  EXPECT_NE(Reference.Reduced.Source.find("x, 1"), std::string::npos)
      << Reference.Reduced.Source;

  for (const ExecOptions &Opts : reducerMatrix()) {
    expectSameRun(Reference, runReduction(Witness, Oracle, Opts),
                  describe(Opts));
    expectSameRun(Reference,
                  runReduction(Witness, Oracle, Opts, /*Pipeline=*/false),
                  describe(Opts) + "/no-pipeline");
  }
}

TEST(ReducerConformanceTest, CandidateBudgetInvariantAcrossBackends) {
  // Cutting the budget mid-round must land on the same candidate on
  // every backend: speculative evaluations past the cut are discarded
  // unobserved, whatever the chunk width.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19),
                                     /*Opt=*/false);
  TestCase Witness = paddedCommaBugKernel();

  ReductionRun Reference =
      runReduction(Witness, Oracle,
                   ExecOptions::withBackend(BackendKind::Inline),
                   /*Pipeline=*/true, /*MaxCandidates=*/7);
  EXPECT_LE(Reference.Stats.CandidatesTried, 7u);

  for (const ExecOptions &Opts : reducerMatrix())
    expectSameRun(Reference,
                  runReduction(Witness, Oracle, Opts, /*Pipeline=*/true,
                               /*MaxCandidates=*/7),
                  describe(Opts) + "/budget7");
}

//===----------------------------------------------------------------------===//
// Crashy-witness isolation under procs
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)
TEST(ReducerConformanceTest, CrashyWitnessReducesToCompletionUnderProcs) {
  // Every probe of this witness hard-aborts the executing process -
  // the model of a witness whose compile or run takes the VM down.
  // Under the procs backend each abort kills one disposable worker
  // and is judged from the isolated Crash outcome, so the reduction
  // runs to completion; any in-process backend would die with the
  // first candidate.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  RunSettings Aborting;
  Aborting.DebugHardAbort = true;
  StatusReductionOracle Oracle(configById(Registry, 12), /*Opt=*/true,
                               RunStatus::Crash, Aborting);

  TestCase Witness = kernelFromSource(
      "crashy witness", "kernel void k(global ulong *out) {\n"
                        "  int a = 1;\n"
                        "  int b = 2;\n"
                        "  int c = a + b;\n"
                        "  out[get_global_id(0)] = (ulong)c;\n"
                        "}\n");

  ReductionRun Procs2 = runReduction(
      Witness, Oracle, ExecOptions::withBackend(BackendKind::Procs, 2));
  EXPECT_TRUE(Procs2.Stats.WitnessWasInteresting);
  EXPECT_GT(Procs2.Stats.CandidatesKept, 0u);
  EXPECT_LT(Procs2.Stats.FinalLines, Procs2.Stats.InitialLines);

  // Different worker counts must still walk the identical sequence.
  expectSameRun(Procs2,
                runReduction(Witness, Oracle,
                             ExecOptions::withBackend(BackendKind::Procs, 4)),
                "procs/4w crashy");
}
#endif

//===----------------------------------------------------------------------===//
// Search-layer properties (backend-independent, pinned on inline)
//===----------------------------------------------------------------------===//

TEST(ReducerConformanceTest, EscalatesToMultiMutationCandidates) {
  // noiseA and noiseB can only be deleted *together*: any candidate
  // with exactly one of them is uninteresting, so single-step rounds
  // stall and only the 2-mutation escalation can finish the job - the
  // classic ddmin situation.
  TestCase Witness = kernelFromSource(
      "escalation witness", "kernel void k(global ulong *out) {\n"
                            "  int noiseA = 1;\n"
                            "  int noiseB = 2;\n"
                            "  out[get_global_id(0)] = 7uL;\n"
                            "}\n");
  auto BothOrNeither = [](const TestCase &C) {
    bool HasA = C.Source.find("noiseA") != std::string::npos;
    bool HasB = C.Source.find("noiseB") != std::string::npos;
    return HasA == HasB;
  };

  ReducerOptions Opts;
  ReduceStats Stats;
  TestCase Reduced = reduceTest(Witness, BothOrNeither, Opts, &Stats);
  EXPECT_GE(Stats.Escalations, 1u);
  EXPECT_EQ(Reduced.Source.find("noiseA"), std::string::npos)
      << Reduced.Source;
  EXPECT_EQ(Reduced.Source.find("noiseB"), std::string::npos)
      << Reduced.Source;
}

TEST(ReducerConformanceTest, SkipsDuplicateCandidates) {
  // Deleting either copy of the duplicated statement prints the same
  // candidate program; the second must be skipped by the printed-form
  // cache without a second evaluation.
  TestCase Witness = kernelFromSource(
      "duplicate statements", "kernel void k(global ulong *out) {\n"
                              "  int x = 9;\n"
                              "  x = x + 0;\n"
                              "  x = x + 0;\n"
                              "  out[get_global_id(0)] = (ulong)x;\n"
                              "}\n");
  auto CountPads = [](const std::string &S) {
    unsigned N = 0;
    for (size_t At = S.find("x + 0"); At != std::string::npos;
         At = S.find("x + 0", At + 1))
      ++N;
    return N;
  };
  auto KeepsBothPads = [&](const TestCase &C) {
    return CountPads(C.Source) >= 2;
  };

  ReducerOptions Opts;
  ReduceStats Stats;
  TestCase Reduced = reduceTest(Witness, KeepsBothPads, Opts, &Stats);
  EXPECT_GE(Stats.CandidatesSkipped, 1u);
  EXPECT_GE(CountPads(Reduced.Source), 2u);
}

TEST(ReducerConformanceTest, BackgroundQueueDrainsDeterministically) {
  // The hunt's background reduction path: however many workers run
  // the jobs and however they interleave, drain() must hand back the
  // identical result list in the identical order.
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  ReducerOptions Opts;
  Opts.MaxCandidates = 60;

  auto RunQueue = [&](unsigned Workers) {
    ReductionQueue Queue(Opts, Workers, /*CaptureTrace=*/true);
    for (uint64_t Key : {30u, 10u, 20u}) {
      ReductionJob Job;
      Job.OrderKey = Key;
      Job.Label = "witness " + std::to_string(Key);
      Job.Witness = paddedCommaBugKernel();
      Job.Oracle = std::make_shared<DifferentialReductionOracle>(
          configById(Registry, 19), /*Opt=*/false);
      Queue.submit(std::move(Job));
    }
    return Queue.drain();
  };

  std::vector<ReductionResult> One = RunQueue(1);
  std::vector<ReductionResult> Three = RunQueue(3);
  ASSERT_EQ(One.size(), 3u);
  ASSERT_EQ(Three.size(), 3u);
  EXPECT_EQ(One[0].OrderKey, 10u);
  EXPECT_EQ(One[2].OrderKey, 30u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_EQ(One[I].OrderKey, Three[I].OrderKey);
    EXPECT_EQ(One[I].Label, Three[I].Label);
    EXPECT_EQ(One[I].Reduced.Source, Three[I].Reduced.Source);
    EXPECT_EQ(One[I].Trace, Three[I].Trace);
    EXPECT_EQ(One[I].Stats.CandidatesTried, Three[I].Stats.CandidatesTried);
  }
}

TEST(ReducerConformanceTest, UninterestingWitnessIsReturnedUnchanged) {
  TestCase Witness = kernelFromSource(
      "boring witness", "kernel void k(global ulong *out) {\n"
                        "  out[get_global_id(0)] = 1uL;\n"
                        "}\n");
  auto Never = [](const TestCase &) { return false; };
  ReducerOptions Opts;
  ReduceStats Stats;
  TestCase Out = reduceTest(Witness, Never, Opts, &Stats);
  EXPECT_FALSE(Stats.WitnessWasInteresting);
  EXPECT_EQ(Stats.CandidatesTried, 0u);
  EXPECT_EQ(Stats.FinalLines, Stats.InitialLines);
  EXPECT_EQ(countCodeLines(Out.Source), Stats.FinalLines);
}
