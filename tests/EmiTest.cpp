//===- EmiTest.cpp - EMI injection and pruning tests -------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Validates the §5 machinery: the 40-variant prune sweep, the
/// adjusted lift probability, and the central metamorphic property -
/// all variants of a base program compute the base's output on a
/// correct implementation.
///
//===----------------------------------------------------------------------===//

#include "corpus/Benchmarks.h"
#include "emi/Emi.h"

#include <gtest/gtest.h>

#include <set>

using namespace clfuzz;

TEST(EmiTest, PaperSweepHas40Variants) {
  std::vector<PruneOptions> Sweep = paperPruneSweep(1);
  // |{0,.3,.6,1}|^3 = 64 combinations; p_c + p_l <= 1 keeps 4 * 10.
  EXPECT_EQ(Sweep.size(), 40u);
  for (const PruneOptions &P : Sweep) {
    EXPECT_TRUE(P.valid());
    EXPECT_LE(P.PCompound + P.PLift, 1.0 + 1e-9);
  }
}

TEST(EmiTest, AdjustedLiftProbability) {
  PruneOptions P;
  P.PCompound = 0.3;
  P.PLift = 0.6;
  // p'_lift = 0.6 / (1 - 0.3).
  EXPECT_NEAR(P.adjustedLift(), 0.6 / 0.7, 1e-12);
  P.PCompound = 0.0;
  EXPECT_NEAR(P.adjustedLift(), 0.6, 1e-12);
  P.PLift = 0.0;
  EXPECT_EQ(P.adjustedLift(), 0.0);
}

TEST(EmiTest, ZeroProbabilitiesLeaveSourceUnchanged) {
  GenOptions GO;
  GO.Mode = GenMode::Basic;
  GO.Seed = 42;
  GO.NumEmiBlocks = 3;
  GeneratedKernel Base = generateKernel(GO);
  PruneOptions None;
  TestCase Variant = makeEmiVariant(GO, None);
  EXPECT_EQ(Base.Source, Variant.Source);
}

TEST(EmiTest, FullPruningShrinksSource) {
  GenOptions GO;
  GO.Mode = GenMode::Basic;
  GO.Seed = 43;
  GO.NumEmiBlocks = 3;
  GeneratedKernel Base = generateKernel(GO);
  PruneOptions Full;
  Full.PLeaf = 1.0;
  Full.PCompound = 1.0;
  TestCase Variant = makeEmiVariant(GO, Full);
  EXPECT_LT(Variant.Source.size(), Base.Source.size());
}

TEST(EmiTest, VariantsDisagreeTextually) {
  GenOptions GO;
  GO.Mode = GenMode::Basic;
  GO.Seed = 44;
  GO.NumEmiBlocks = 4;
  std::set<std::string> Sources;
  for (const PruneOptions &P : paperPruneSweep(7))
    Sources.insert(makeEmiVariant(GO, P).Source);
  // At least a handful of the 40 prunings must differ.
  EXPECT_GE(Sources.size(), 4u);
}

TEST(EmiTest, VariantsAreEquivalentModuloInputs) {
  // The metamorphic core: every variant computes the base's result on
  // the clean reference implementation.
  for (uint64_t Seed : {70ull, 71ull, 72ull}) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Seed;
    GO.NumEmiBlocks = 3;
    TestCase Base = TestCase::fromGenerated(generateKernel(GO));
    RunOutcome BaseRun = runTestOnReference(Base, /*Optimize=*/true);
    ASSERT_TRUE(BaseRun.ok()) << BaseRun.Message;

    std::vector<PruneOptions> Sweep = paperPruneSweep(Seed * 13);
    for (size_t I = 0; I < Sweep.size(); I += 7) {
      TestCase Variant = makeEmiVariant(GO, Sweep[I]);
      for (bool Opt : {false, true}) {
        RunOutcome VR = runTestOnReference(Variant, Opt);
        ASSERT_TRUE(VR.ok()) << VR.Message << "\n" << Variant.Source;
        EXPECT_EQ(VR.OutputHash, BaseRun.OutputHash)
            << "variant " << I << " (opt " << Opt
            << ") diverged from its base:\n"
            << Variant.Source;
      }
    }
  }
}

TEST(EmiTest, InjectionPreservesBenchmarkResults) {
  // Injected dead-by-construction blocks must not change a benchmark's
  // output on a correct implementation (§5 "Injecting into real-world
  // kernels").
  for (Benchmark &B : emiBenchmarkSuite()) {
    RunOutcome BaseRun = runTestOnReference(B.Test, true);
    ASSERT_TRUE(BaseRun.ok()) << B.Name << ": " << BaseRun.Message;
    for (bool Subst : {false, true}) {
      InjectOptions IO;
      IO.Seed = 555 + Subst;
      IO.NumBlocks = 2;
      IO.Substitutions = Subst;
      IO.InfiniteLoopProbability = 0.0;
      TestCase Injected;
      DiagEngine Diags;
      ASSERT_TRUE(injectEmiIntoTest(B.Test, IO, Injected, Diags))
          << B.Name << ": " << Diags.str();
      RunOutcome IR = runTestOnReference(Injected, true);
      ASSERT_TRUE(IR.ok())
          << B.Name << ": " << IR.Message << "\n" << Injected.Source;
      EXPECT_EQ(IR.OutputHash, BaseRun.OutputHash)
          << B.Name << " changed under EMI injection (subst=" << Subst
          << "):\n"
          << Injected.Source;
    }
  }
}

TEST(EmiTest, InvertedDeadArrayActivatesBlocks) {
  // With dead[j] = d-1-j every guard becomes true; at least some base
  // programs must then produce different results, otherwise the
  // injected code would be vacuous (§7.4 base filtering).
  unsigned Changed = 0;
  for (uint64_t Seed = 90; Seed != 102; ++Seed) {
    GenOptions GO;
    GO.Mode = GenMode::Basic;
    GO.Seed = Seed;
    GO.NumEmiBlocks = 3;
    TestCase T = TestCase::fromGenerated(generateKernel(GO));
    RunOutcome Normal = runTestOnReference(T, false);
    if (!Normal.ok())
      continue;
    RunSettings S;
    S.InvertDead = true;
    RunOutcome Inverted = runTestOnReference(T, false, S);
    if (Inverted.ok() && Inverted.OutputHash != Normal.OutputHash)
      ++Changed;
  }
  EXPECT_GE(Changed, 4u);
}
