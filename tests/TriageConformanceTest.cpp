//===- TriageConformanceTest.cpp - Triage conformance under fault injection --===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The triage stage (src/triage/) makes verifiable claims: bisection
// names EXACTLY the minimal faulty pass combination, the cluster key
// identifies a defect independently of the witness that exposed it,
// and the whole report is byte-identical across backends, worker
// counts and cache states. Those claims are only testable against
// bugs with a known ground truth, so this suite injects deliberately
// buggy passes (opt/Pass.h: break-on-shift, break-on-and, and the
// shift-mark/mark-break pair that only misbehaves in combination)
// through custom DeviceConfigs no registry entry ever enables, and
// pins:
//
//  * single injected bug -> bisection names exactly that pass;
//  * two coexisting neutral-alone passes -> the minimal *combination*;
//  * byte-identity across inline / threads(1,2,8) / procs, with the
//    outcome cache off, in-memory, disk-cold and disk-warm;
//  * clustering stability over a 100-seed sweep (one injected bug =>
//    one cluster; distinct injected bugs => distinct clusters);
//  * triage riding the ReductionQueue identically in scheduler-driven
//    and threaded modes;
//  * a remote fleet with a worker killed mid-run (--die-after-jobs)
//    still producing the byte-identical report.
//
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "exec/OutcomeCache.h"
#include "gen/Generator.h"
#include "oracle/Reducer.h"
#include "oracle/ReductionQueue.h"
#include "support/StringUtil.h"
#include "triage/Triage.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

using namespace clfuzz;

namespace {

/// A fresh private directory under the system temp dir, removed on
/// destruction (the OutcomeCacheTest fixture).
struct TempDir {
  std::filesystem::path Path;

  TempDir() {
    static int Counter = 0;
    Path = std::filesystem::temp_directory_path() /
           ("clfuzz-triagetest-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + std::to_string(Counter++));
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// A configuration whose ONLY defects are the requested fault-injected
/// passes, at both opt levels. No registry entry sets these flags, so
/// the minimal faulty set is ground truth by construction.
DeviceConfig faultConfig(int Id, bool BreakOnShift, bool BreakOnAnd,
                         bool ShiftMark, bool MarkBreak) {
  DeviceConfig C;
  C.Id = Id;
  C.Device = "fault-injected triage device";
  C.Driver = "test";
  for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
    B->BreakOnShiftBug = BreakOnShift;
    B->BreakOnAndBug = BreakOnAnd;
    B->ShiftMarkBug = ShiftMark;
    B->MarkBreakBug = MarkBreak;
  }
  return C;
}

/// A small single-kernel test case over one 8-byte output buffer.
TestCase kernelFromSource(const char *Name, std::string Source) {
  TestCase T;
  T.Name = Name;
  T.Source = std::move(Source);
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

/// Output = safe_lshift(3, 2) = 12; break-on-shift turns it into
/// safe_rshift(3, 2) = 0, and the shift-mark/mark-break pair into 13.
TestCase shiftKernel() {
  return kernelFromSource("shift witness",
                          "kernel void k(global ulong *out) {\n"
                          "  ulong a = 3uL;\n"
                          "  ulong b = 2uL;\n"
                          "  out[get_global_id(0)] = safe_lshift(a, b);\n"
                          "}\n");
}

/// Output = 0xF0 & 0x3C = 0x30; break-on-and turns it into | = 0xFC.
TestCase andKernel() {
  return kernelFromSource("bitand witness",
                          "kernel void k(global ulong *out) {\n"
                          "  ulong a = 240uL;\n"
                          "  ulong b = 60uL;\n"
                          "  out[get_global_id(0)] = a & b;\n"
                          "}\n");
}

/// The shift witness buried in unrelated statements, so a reduction
/// has real work to do before triage runs.
TestCase paddedShiftKernel() {
  return kernelFromSource(
      "padded shift witness",
      "int helper(int v) { return v * 3 + 1; }\n"
      "kernel void k(global ulong *out) {\n"
      "  int noise0 = 11;\n"
      "  int noise1 = helper(noise0);\n"
      "  for (int i = 0; i < 4; i++) noise1 += i;\n"
      "  if (noise1 > 100) { noise0 = 2; } else { noise0 = 3; }\n"
      "  ulong a = 3uL;\n"
      "  ulong b = 2uL;\n"
      "  int noise2 = noise0 + noise1;\n"
      "  noise2 = noise2 * 2;\n"
      "  out[get_global_id(0)] = safe_lshift(a, b);\n"
      "}\n");
}

TriageOptions inlineTriage() {
  TriageOptions TO;
  TO.Exec = ExecOptions::withBackend(BackendKind::Inline);
  return TO;
}

/// Everything observable about a result in one string, so equality
/// checks cover every field and every renderer at once.
std::string describeResult(const TriageResult &R) {
  return renderTriageLine(R) + "\n" + renderTriageCsvRow("w", R) +
         renderTriageJsonl("w", R) +
         "pipeline=" + join(R.PipelinePasses, "+") +
         " probes=" + std::to_string(R.Probes);
}

} // namespace

//===----------------------------------------------------------------------===//
// Exact bisection against injected ground truth
//===----------------------------------------------------------------------===//

TEST(TriageConformanceTest, SingleInjectedBugIsNamedExactly) {
  // Two injected passes in the pipeline, only one of which can touch
  // each witness: bisection must name exactly the guilty one.
  DeviceConfig C = faultConfig(901, /*BreakOnShift=*/true,
                               /*BreakOnAnd=*/true, false, false);

  TriageResult Shift = triageWitness(shiftKernel(), C, false, inlineTriage());
  EXPECT_TRUE(Shift.Reproduced);
  EXPECT_TRUE(Shift.BugInPasses);
  EXPECT_EQ(Shift.PipelinePasses,
            (std::vector<std::string>{"break-on-shift(test-bug)",
                                      "break-on-and(test-bug)"}));
  EXPECT_EQ(Shift.FaultyPasses,
            std::vector<std::string>{"break-on-shift(test-bug)"});
  EXPECT_EQ(Shift.ClusterKey.rfind("break-on-shift(test-bug)/", 0), 0u);

  TriageResult And = triageWitness(andKernel(), C, false, inlineTriage());
  EXPECT_TRUE(And.Reproduced);
  EXPECT_TRUE(And.BugInPasses);
  EXPECT_EQ(And.FaultyPasses,
            std::vector<std::string>{"break-on-and(test-bug)"});

  // Two different defects, two different clusters.
  EXPECT_NE(Shift.ClusterKey, And.ClusterKey);
}

TEST(TriageConformanceTest, CoexistingPassesYieldMinimalCombination) {
  // shift-mark plants a neutral marker, mark-break only fires on the
  // marker: each is a no-op alone, the PAIR miscompiles. The minimal
  // faulty set must be the combination, not any single pass.
  DeviceConfig C = faultConfig(902, false, false, /*ShiftMark=*/true,
                               /*MarkBreak=*/true);
  TriageResult R = triageWitness(shiftKernel(), C, false, inlineTriage());
  EXPECT_TRUE(R.Reproduced);
  EXPECT_TRUE(R.BugInPasses);
  EXPECT_EQ(R.FaultyPasses,
            (std::vector<std::string>{"shift-mark(test-bug)",
                                      "mark-break(test-bug)"}));
  EXPECT_EQ(R.ClusterKey.rfind(
                "shift-mark(test-bug)+mark-break(test-bug)/", 0),
            0u);
}

TEST(TriageConformanceTest, NonReproducingWitnessIsReported) {
  // A clean configuration: the full-pipeline run matches the
  // reference, so triage must say so instead of inventing a verdict.
  DeviceConfig C = faultConfig(903, false, false, false, false);
  TriageResult R = triageWitness(shiftKernel(), C, false, inlineTriage());
  EXPECT_FALSE(R.Reproduced);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.FaultyPasses.empty());
  EXPECT_TRUE(R.ClusterKey.empty());
}

TEST(TriageConformanceTest, NonPassBugGetsFeatureOnlyCluster) {
  // Config 19's wrong-code defect on seed 1029 lives outside the pass
  // pipeline: the empty-mask probe still diverges, so attribution must
  // say non-pass and the cluster key must be feature-only.
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  GenOptions GO;
  GO.Mode = GenMode::Basic;
  GO.Seed = 1029;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  TriageResult R =
      triageWitness(T, configById(Zoo, 19), false, inlineTriage());
  EXPECT_TRUE(R.Reproduced);
  EXPECT_FALSE(R.BugInPasses);
  EXPECT_TRUE(R.FaultyPasses.empty());
  EXPECT_EQ(R.ClusterKey.rfind("nonpass/", 0), 0u);
}

TEST(TriageConformanceTest, CountersChargeOncePerWitness) {
  DeviceConfig C = faultConfig(904, true, false, false, false);
  TriageCounters Before = triageCounters();
  TriageResult R = triageWitness(shiftKernel(), C, false, inlineTriage());
  TriageCounters After = triageCounters();
  EXPECT_EQ(After.Witnesses, Before.Witnesses + 1);
  EXPECT_EQ(After.Probes, Before.Probes + R.Probes);
  EXPECT_EQ(After.Clusters, Before.Clusters); // consumers charge these
}

//===----------------------------------------------------------------------===//
// Byte-identity across backends, worker counts and cache states
//===----------------------------------------------------------------------===//

TEST(TriageConformanceTest, ByteIdenticalAcrossBackendsAndCacheStates) {
  // All four injected passes at once: a 4-pass pipeline whose greedy
  // bisection takes several probe rounds — enough surface for a
  // backend or cache divergence to show.
  DeviceConfig C = faultConfig(905, true, true, true, true);
  TestCase T = shiftKernel();

  TriageResult Baseline = triageWitness(T, C, false, inlineTriage());
  ASSERT_TRUE(Baseline.Reproduced);
  std::string Expected = describeResult(Baseline);

  std::vector<ExecOptions> Matrix;
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Inline));
  for (unsigned Threads : {1u, 2u, 8u})
    Matrix.push_back(
        ExecOptions::withBackend(BackendKind::Threads, Threads));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Procs, 2));

  for (const ExecOptions &Base : Matrix) {
    std::string Where = std::string(backendKindName(Base.Backend)) + "/" +
                        std::to_string(Base.Threads) + "w";
    // Cache off.
    {
      TriageOptions TO;
      TO.Exec = Base;
      EXPECT_EQ(describeResult(triageWitness(T, C, false, TO)), Expected)
          << Where << " cache=off";
    }
    // In-memory cache.
    {
      TriageOptions TO;
      TO.Exec = Base;
      OutcomeCacheOptions CO;
      CO.Mode = CacheMode::Mem;
      CO.KeySalt = cacheKeySalt(TO.Exec);
      TO.Exec.Cache = makeOutcomeCache(CO);
      EXPECT_EQ(describeResult(triageWitness(T, C, false, TO)), Expected)
          << Where << " cache=mem";
    }
    // Disk cache, cold then warm: the warm run must answer probes
    // from the store AND stay byte-identical.
    {
      TempDir Dir;
      for (const char *Pass : {"cold", "warm"}) {
        TriageOptions TO;
        TO.Exec = Base;
        OutcomeCacheOptions CO;
        CO.Mode = CacheMode::Disk;
        CO.Dir = Dir.str();
        CO.KeySalt = cacheKeySalt(TO.Exec);
        TO.Exec.Cache = makeOutcomeCache(CO);
        EXPECT_EQ(describeResult(triageWitness(T, C, false, TO)),
                  Expected)
            << Where << " cache=disk-" << Pass;
        if (Pass == std::string("warm"))
          EXPECT_GT(TO.Exec.Cache->stats().Hits +
                        TO.Exec.Cache->stats().DiskHits,
                    0u)
              << Where << ": warm disk run never hit the cache";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Clustering stability: a defect is one cluster, whatever exposes it
//===----------------------------------------------------------------------===//

TEST(TriageConformanceTest, ClusteringIsStableOverHundredSeedSweep) {
  DeviceConfig ShiftBug = faultConfig(906, true, false, false, false);
  DeviceConfig AndBug = faultConfig(907, false, true, false, false);

  // Probes on tiny kernels are cheap; a shared in-memory cache keeps
  // the reference runs from repeating across the two configs.
  TriageOptions TO = inlineTriage();
  OutcomeCacheOptions CO;
  CO.Mode = CacheMode::Mem;
  CO.KeySalt = cacheKeySalt(TO.Exec);
  TO.Exec.Cache = makeOutcomeCache(CO);

  std::set<std::string> ShiftKeys, AndKeys;
  unsigned ShiftHits = 0, AndHits = 0;
  for (uint64_t Seed = 2000; Seed != 2100; ++Seed) {
    GenOptions GO;
    GO.Mode = GenMode::Basic;
    GO.Seed = Seed;
    TestCase T = TestCase::fromGenerated(generateKernel(GO));
    TriageResult S = triageWitness(T, ShiftBug, false, TO);
    if (S.Reproduced) {
      ASSERT_TRUE(S.BugInPasses) << "seed " << Seed;
      EXPECT_EQ(S.FaultyPasses,
                std::vector<std::string>{"break-on-shift(test-bug)"})
          << "seed " << Seed;
      ShiftKeys.insert(S.ClusterKey);
      ++ShiftHits;
    }
    TriageResult A = triageWitness(T, AndBug, false, TO);
    if (A.Reproduced) {
      ASSERT_TRUE(A.BugInPasses) << "seed " << Seed;
      EXPECT_EQ(A.FaultyPasses,
                std::vector<std::string>{"break-on-and(test-bug)"})
          << "seed " << Seed;
      AndKeys.insert(A.ClusterKey);
      ++AndHits;
    }
  }

  // The sweep must actually exercise both defects...
  EXPECT_GE(ShiftHits, 5u);
  EXPECT_GE(AndHits, 5u);
  // ...every witness of one injected bug lands in ONE cluster...
  EXPECT_EQ(ShiftKeys.size(), 1u) << join(
      std::vector<std::string>(ShiftKeys.begin(), ShiftKeys.end()), " ");
  EXPECT_EQ(AndKeys.size(), 1u) << join(
      std::vector<std::string>(AndKeys.begin(), AndKeys.end()), " ");
  // ...and distinct bugs land in distinct clusters.
  EXPECT_NE(*ShiftKeys.begin(), *AndKeys.begin());
}

//===----------------------------------------------------------------------===//
// Triage through the ReductionQueue, in both queue modes
//===----------------------------------------------------------------------===//

namespace {

/// Reduces + triages the padded shift witness through a ReductionQueue
/// configured with \p Exec and \p Workers, returning the full
/// observable report.
std::string reduceAndTriage(const DeviceConfig &C, const ExecOptions &Exec,
                            unsigned Workers) {
  ReducerOptions RO;
  RO.Exec = Exec;
  ReductionQueue Q(RO, Workers);
  ReductionJob J;
  J.OrderKey = 0;
  J.Label = "padded shift";
  J.Witness = paddedShiftKernel();
  J.Oracle = std::make_shared<DifferentialReductionOracle>(C, false);
  J.Triage = TriageRequest{C, false};
  Q.submit(std::move(J));
  if (Workers == 0) {
    // Scheduler-driven mode: the caller's thread services the queue,
    // exactly like the scheduler's reduction lane.
    while (Q.runNextPending())
      ;
  }
  std::vector<ReductionResult> Results = Q.drain();
  if (Results.size() != 1)
    return "wrong result count";
  const ReductionResult &R = Results[0];
  if (!R.Error.empty())
    return "reduction failed: " + R.Error;
  if (!R.Triage)
    return "no triage result";
  return R.Reduced.Source + describeResult(*R.Triage);
}

} // namespace

TEST(TriageConformanceTest, QueueModesAndBackendsAgreeOnTriage) {
  DeviceConfig C = faultConfig(908, true, false, false, false);
  std::string Expected = reduceAndTriage(
      C, ExecOptions::withBackend(BackendKind::Inline), /*Workers=*/0);
  ASSERT_EQ(Expected.rfind("reduction failed", 0), std::string::npos)
      << Expected;

  // Threaded queue (the solo `hunt --reduce --triage` mode), several
  // worker counts, and the candidate/probe backends of the matrix.
  for (unsigned Workers : {1u, 2u})
    EXPECT_EQ(reduceAndTriage(
                  C, ExecOptions::withBackend(BackendKind::Inline), Workers),
              Expected)
        << Workers << " queue workers";
  for (unsigned Threads : {1u, 2u, 8u})
    EXPECT_EQ(
        reduceAndTriage(
            C, ExecOptions::withBackend(BackendKind::Threads, Threads), 1),
        Expected)
        << "threads/" << Threads;
  EXPECT_EQ(reduceAndTriage(
                C, ExecOptions::withBackend(BackendKind::Procs, 2), 1),
            Expected)
      << "procs/2";
}

//===----------------------------------------------------------------------===//
// Remote fleet: a worker killed mid-run must not perturb the report
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)

#include "exec/WorkerLoop.h"

TEST(TriageConformanceTest, RemoteWorkerDeathMidRunIsByteIdentical) {
  DeviceConfig C = faultConfig(909, true, false, false, false);
  std::string Expected = reduceAndTriage(
      C, ExecOptions::withBackend(BackendKind::Inline), /*Workers=*/0);
  ASSERT_EQ(Expected.rfind("reduction failed", 0), std::string::npos)
      << Expected;

  // Worker 2 self-destructs after 3 jobs — mid-reduction, with the
  // triage probes still to come. The coordinator must requeue its
  // in-flight jobs onto worker 1 and the report must not move a byte.
  WorkerOptions W1O;
  W1O.Jobs = 2;
  WorkerOptions W2O;
  W2O.Jobs = 2;
  W2O.DieAfterJobs = 3;
  WorkerServer W1(W1O), W2(W2O);
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  ExecOptions Remote;
  Remote.Backend = BackendKind::Remote;
  Remote.RemoteWorkers = {"127.0.0.1:" + std::to_string(W1.port()),
                          "127.0.0.1:" + std::to_string(W2.port())};
  Remote.RemoteHeartbeatMs = 2000;

  EXPECT_EQ(reduceAndTriage(C, Remote, /*Workers=*/1), Expected);
  EXPECT_TRUE(W2.died()) << "fault injection never tripped";

  W1.stop();
  W2.stop();
}

#endif // unix
