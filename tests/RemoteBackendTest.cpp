//===- RemoteBackendTest.cpp - Remote backend + worker protocol suite --------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Pins the multi-host execution contract: a campaign on
// --backend=remote against loopback `clfuzz worker` servers produces
// output bit-identical to --backend=inline (raw batches and the
// Table 1/4/5 campaign drivers), a worker dying mid-campaign has its
// in-flight jobs requeued without corrupting results, a wedged worker
// is evicted by heartbeat, per-job deadlines record Timeout outcomes,
// and the wire protocol itself round-trips exactly and rejects
// garbage instead of guessing (docs/wire-protocol.md).
//
// Workers run in-process (WorkerServer is embeddable) on ephemeral
// loopback ports, so the suite needs no fixtures beyond a socket
// stack; the `clfuzz worker` CLI wraps the same server, and CI drives
// that path with real processes.
//
//===----------------------------------------------------------------------===//

#include "exec/FleetRegistry.h"
#include "exec/RemoteBackend.h"
#include "exec/WireProtocol.h"
#include "exec/WorkerLoop.h"
#include "device/DeviceConfig.h"
#include "oracle/Campaign.h"
#include "oracle/Reducer.h"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <chrono>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace clfuzz;

namespace {

/// ExecOptions for a remote backend over the given live servers.
ExecOptions remoteOpts(std::initializer_list<const WorkerServer *> Servers,
                       unsigned HeartbeatMs = 2000,
                       unsigned TimeoutMs = 0) {
  ExecOptions O;
  O.Backend = BackendKind::Remote;
  for (const WorkerServer *S : Servers)
    O.RemoteWorkers.push_back("127.0.0.1:" + std::to_string(S->port()));
  O.RemoteHeartbeatMs = HeartbeatMs;
  O.RemoteTimeoutMs = TimeoutMs;
  return O;
}

WorkerOptions loopbackWorker(unsigned Jobs) {
  WorkerOptions WO;
  WO.Jobs = Jobs;
  return WO;
}

/// WorkerOptions for a rendezvous-mode worker dialling the registry.
WorkerOptions rendezvousWorker(unsigned RegistryPort, unsigned Jobs) {
  WorkerOptions WO;
  WO.Connect = "127.0.0.1:" + std::to_string(RegistryPort);
  WO.Jobs = Jobs;
  return WO;
}

/// Polls \p Cond every 10 ms for up to \p Ms milliseconds.
bool waitUntil(const std::function<bool()> &Cond, unsigned Ms) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Cond())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Cond();
}

/// N campaign cells cycling over the zoo — the standard churn load.
std::vector<ExecJob> churnBatch(const TestCase &T,
                                const std::vector<DeviceConfig> &Zoo,
                                int N) {
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != N; ++I)
    Jobs.push_back(
        ExecJob::onConfig(T, Zoo[I % Zoo.size()], I % 2 == 0, RunSettings()));
  return Jobs;
}

std::vector<DeviceConfig> smallZoo() {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo;
  for (int Id : {1, 12, 14, 19})
    Zoo.push_back(configById(Registry, Id));
  return Zoo;
}

void expectSameOutcomes(const std::vector<RunOutcome> &A,
                        const std::vector<RunOutcome> &B,
                        const std::string &Ctx) {
  ASSERT_EQ(A.size(), B.size()) << Ctx;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Status, B[I].Status) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHash, B[I].OutputHash) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Steps, B[I].Steps) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHead, B[I].OutputHead) << Ctx << " job " << I;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire protocol: round trips and garbage rejection
//===----------------------------------------------------------------------===//

TEST(RemoteBackendTest, FramesRoundTripThroughAnFd) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);

  GenOptions GO;
  GO.Seed = 31415;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  RunSettings RS;
  RS.SchedulerSeed = 7;
  ExecJob Job = ExecJob::onConfig(T, configById(Registry, 12), true, RS);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::Job,
                               wire::encodeJob(42, Job)));
  wire::Frame F;
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  ASSERT_EQ(F.Type, wire::FrameType::Job);
  wire::DecodedJob D = wire::decodeJob(F);
  EXPECT_EQ(D.Tag, 42u);
  EXPECT_EQ(D.Job.Test.Source, T.Source);
  ASSERT_TRUE(D.Job.Config.has_value());
  EXPECT_EQ(D.Job.Config->Id, 12);

  // The round-tripped job must execute identically: the tag travels,
  // the descriptor stays pure.
  RunOutcome A = runExecJob(Job);
  RunOutcome B = runExecJob(D.Job.view());
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.OutputHash, B.OutputHash);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::Outcome,
                               wire::encodeOutcome(42, A)));
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  ASSERT_EQ(F.Type, wire::FrameType::Outcome);
  wire::DecodedOutcome O = wire::decodeOutcome(F);
  EXPECT_EQ(O.Tag, 42u);
  EXPECT_EQ(O.Outcome.Status, A.Status);
  EXPECT_EQ(O.Outcome.OutputHash, A.OutputHash);
  EXPECT_EQ(O.Outcome.Message, A.Message);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::HeartbeatAck,
                               wire::encodeHeartbeat(99)));
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  EXPECT_EQ(wire::decodeHeartbeat(F), 99u);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::HelloAck,
                               wire::encodeHelloAck(8)));
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  EXPECT_EQ(wire::decodeHelloAck(F), 8u);

  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(RemoteBackendTest, MalformedFramesAreRejectedNotGuessed) {
  // Bad magic.
  {
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    const uint8_t Garbage[12] = {'G', 'E', 'T', ' ', '/', ' ',
                                 'H', 'T', 'T', 'P', '/', '1'};
    ASSERT_TRUE(wire::writeFull(Fds[1], Garbage, sizeof(Garbage)));
    wire::Frame F;
    EXPECT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Malformed);
    ::close(Fds[0]);
    ::close(Fds[1]);
  }
  // Right magic, wrong version.
  {
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    WireWriter W;
    W.u32(wire::FrameMagic);
    W.u8(wire::ProtocolVersion + 1);
    W.u8(static_cast<uint8_t>(wire::FrameType::Hello));
    W.u8(0);
    W.u8(0);
    W.u32(0);
    ASSERT_TRUE(
        wire::writeFull(Fds[1], W.buffer().data(), W.buffer().size()));
    wire::Frame F;
    EXPECT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Malformed);
    ::close(Fds[0]);
    ::close(Fds[1]);
  }
  // Oversized length field.
  {
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    WireWriter W;
    W.u32(wire::FrameMagic);
    W.u8(wire::ProtocolVersion);
    W.u8(static_cast<uint8_t>(wire::FrameType::Job));
    W.u8(0);
    W.u8(0);
    W.u32(wire::MaxFramePayload + 1);
    ASSERT_TRUE(
        wire::writeFull(Fds[1], W.buffer().data(), W.buffer().size()));
    wire::Frame F;
    EXPECT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Malformed);
    ::close(Fds[0]);
    ::close(Fds[1]);
  }
  // Truncated mid-header is EOF (a torn connection, not an attack).
  {
    int Fds[2];
    ASSERT_EQ(::pipe(Fds), 0);
    const uint8_t Partial[4] = {'C', 'L', 'F', 'Z'};
    ASSERT_TRUE(wire::writeFull(Fds[1], Partial, sizeof(Partial)));
    ::close(Fds[1]);
    wire::Frame F;
    EXPECT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Eof);
    ::close(Fds[0]);
  }
}

TEST(RemoteBackendTest, WorkerSurvivesAGarbageConnection) {
  WorkerServer Server(loopbackWorker(1));
  ASSERT_TRUE(Server.start());

  // A client that speaks the wrong protocol gets dropped at the
  // handshake...
  int Fd = wire::connectTcp("127.0.0.1", Server.port(), 2000);
  ASSERT_GE(Fd, 0);
  const char Garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(wire::writeFull(Fd, Garbage, sizeof(Garbage) - 1));
  uint8_t Byte;
  EXPECT_FALSE(wire::readFull(Fd, &Byte, 1)); // worker hung up
  ::close(Fd);

  // ...and the server still serves a well-behaved coordinator.
  GenOptions GO;
  GO.Seed = 99;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> One = {
      ExecJob::onConfig(T, Zoo[0], true, RunSettings())};

  std::unique_ptr<ExecBackend> Backend =
      makeRemoteBackend(remoteOpts({&Server}));
  std::vector<RunOutcome> Got = Backend->run(One);
  ASSERT_EQ(Got.size(), 1u);
  RunOutcome Clean = runExecJob(One[0]);
  EXPECT_EQ(Got[0].Status, Clean.Status);
  EXPECT_EQ(Got[0].OutputHash, Clean.OutputHash);
}

//===----------------------------------------------------------------------===//
// Loopback bit-identity vs inline
//===----------------------------------------------------------------------===//

TEST(RemoteBackendTest, BatchesMatchSerialReference) {
  WorkerServer W1(loopbackWorker(2)), W2(loopbackWorker(2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = 20257;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs;
  for (const DeviceConfig &C : Zoo)
    for (bool Opt : {false, true})
      Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
  Jobs.push_back(ExecJob::onReference(T, true, RunSettings()));

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  std::unique_ptr<ExecBackend> Remote =
      makeRemoteBackend(remoteOpts({&W1, &W2}));
  EXPECT_EQ(Remote->kind(), BackendKind::Remote);
  expectSameOutcomes(Expected, Remote->run(Jobs), "remote/2 workers");

  // A backend must survive empty batches between real ones, and stay
  // usable across batch boundaries (links are persistent).
  EXPECT_TRUE(Remote->run({}).empty());
  expectSameOutcomes(Expected, Remote->run(Jobs), "remote second batch");
}

TEST(RemoteBackendTest, ConcurrencySumsTheFleetSlots) {
  WorkerServer W1(loopbackWorker(3)), W2(loopbackWorker(2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());
  std::unique_ptr<ExecBackend> Remote =
      makeRemoteBackend(remoteOpts({&W1, &W2}));
  EXPECT_EQ(Remote->concurrency(), 5u);
}

TEST(RemoteBackendTest, DifferentialCampaignIdenticalToInline) {
  // Tables 1 and 4 are runDifferentialCampaign compositions; byte-for-
  // byte table equality across the network is the acceptance bar.
  WorkerServer W1(loopbackWorker(2)), W2(loopbackWorker(2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<GenMode> Modes = {GenMode::Barrier, GenMode::All};

  CampaignSettings S;
  S.KernelsPerMode = 4;
  S.BaseGen.MinThreads = 48;
  S.BaseGen.MaxThreads = 128;

  S.Exec = ExecOptions::withBackend(BackendKind::Inline);
  std::vector<ModeTable> Reference =
      runDifferentialCampaign(Zoo, Modes, S);
  ASSERT_FALSE(Reference.empty());

  S.Exec = remoteOpts({&W1, &W2});
  std::vector<ModeTable> Got = runDifferentialCampaign(Zoo, Modes, S);

  ASSERT_EQ(Reference.size(), Got.size());
  for (size_t I = 0; I != Reference.size(); ++I) {
    EXPECT_EQ(Reference[I].Mode, Got[I].Mode);
    EXPECT_EQ(Reference[I].NumTests, Got[I].NumTests);
    ASSERT_EQ(Reference[I].Cells.size(), Got[I].Cells.size());
    auto ItA = Reference[I].Cells.begin();
    auto ItB = Got[I].Cells.begin();
    for (; ItA != Reference[I].Cells.end(); ++ItA, ++ItB) {
      EXPECT_EQ(ItA->first.ConfigId, ItB->first.ConfigId);
      EXPECT_EQ(ItA->first.Opt, ItB->first.Opt);
      EXPECT_EQ(ItA->second.W, ItB->second.W);
      EXPECT_EQ(ItA->second.BF, ItB->second.BF);
      EXPECT_EQ(ItA->second.C, ItB->second.C);
      EXPECT_EQ(ItA->second.TO, ItB->second.TO);
      EXPECT_EQ(ItA->second.Pass, ItB->second.Pass);
    }
  }
}

TEST(RemoteBackendTest, EmiCampaignIdenticalToInline) {
  // Table 5 (EMI variants) exercises generation-side forEachIndex on
  // the calling process plus remote cell execution.
  WorkerServer W1(loopbackWorker(2)), W2(loopbackWorker(2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo = {configById(Registry, 12),
                                   configById(Registry, 19)};
  EmiCampaignSettings S;
  S.NumBases = 2;
  S.Base.BaseGen.MinThreads = 48;
  S.Base.BaseGen.MaxThreads = 96;

  S.Base.Exec = ExecOptions::withBackend(BackendKind::Inline);
  unsigned ReferenceUsable = 0;
  std::vector<EmiCampaignColumn> Reference =
      runEmiCampaign(Zoo, S, ReferenceUsable);

  S.Base.Exec = remoteOpts({&W1, &W2});
  unsigned Usable = 0;
  std::vector<EmiCampaignColumn> Got = runEmiCampaign(Zoo, S, Usable);

  EXPECT_EQ(ReferenceUsable, Usable);
  ASSERT_EQ(Reference.size(), Got.size());
  for (size_t I = 0; I != Reference.size(); ++I) {
    EXPECT_EQ(Reference[I].Key.ConfigId, Got[I].Key.ConfigId);
    EXPECT_EQ(Reference[I].Key.Opt, Got[I].Key.Opt);
    EXPECT_EQ(Reference[I].BaseFails, Got[I].BaseFails);
    EXPECT_EQ(Reference[I].Wrong, Got[I].Wrong);
    EXPECT_EQ(Reference[I].InducedBF, Got[I].InducedBF);
    EXPECT_EQ(Reference[I].InducedCrash, Got[I].InducedCrash);
    EXPECT_EQ(Reference[I].InducedTimeout, Got[I].InducedTimeout);
    EXPECT_EQ(Reference[I].Stable, Got[I].Stable);
  }
}

//===----------------------------------------------------------------------===//
// Failure attribution: worker death, wedge, deadline, crash isolation
//===----------------------------------------------------------------------===//

TEST(RemoteBackendTest, WorkerDeathMidCampaignRequeuesInFlightJobs) {
  // Worker 2 self-destructs before sending its 3rd outcome — with its
  // window full of in-flight jobs. Those jobs must land on worker 1
  // and every result must still match the serial reference.
  WorkerOptions Dying = loopbackWorker(2);
  Dying.DieAfterJobs = 3;
  WorkerServer W1(loopbackWorker(2)), W2(Dying);
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 60001;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 40; ++I)
    Jobs.push_back(
        ExecJob::onConfig(T, Zoo[I % Zoo.size()], I % 2 == 0, RunSettings()));

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  std::unique_ptr<ExecBackend> Remote =
      makeRemoteBackend(remoteOpts({&W1, &W2}));
  std::vector<RunOutcome> Got = Remote->run(Jobs);

  EXPECT_TRUE(W2.died()) << "fault injection never tripped";
  EXPECT_GE(W2.jobsExecuted(), 3u);
  expectSameOutcomes(Expected, Got, "kill mid-campaign");
}

TEST(RemoteBackendTest, WedgedWorkerIsEvictedByHeartbeat) {
  // Worker 2 completes the handshake, then swallows every job and
  // heartbeat — the wedged-machine model. Only the missed heartbeat
  // can unmask it; its jobs must requeue onto worker 1.
  WorkerOptions Wedged = loopbackWorker(1);
  Wedged.IgnoreJobs = true;
  WorkerServer W1(loopbackWorker(2)), W2(Wedged);
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 777;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 12; ++I)
    Jobs.push_back(ExecJob::onConfig(T, Zoo[I % Zoo.size()], true,
                                     RunSettings()));

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  std::unique_ptr<ExecBackend> Remote =
      makeRemoteBackend(remoteOpts({&W1, &W2}, /*HeartbeatMs=*/200));
  expectSameOutcomes(Expected, Remote->run(Jobs), "wedged worker");
}

TEST(RemoteBackendTest, DeadlineExpiryRecordsATimeoutOutcome) {
  // A lone wedged worker with a per-job deadline: the job is requeued
  // once (onto the same endpoint after reconnect — nothing else
  // exists) and recorded as Timeout on the second expiry. The
  // campaign ends with an attributed outcome, not a hang.
  WorkerOptions Wedged = loopbackWorker(1);
  Wedged.IgnoreJobs = true;
  WorkerServer W(Wedged);
  ASSERT_TRUE(W.start());

  GenOptions GO;
  GO.Seed = 4242;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> One = {
      ExecJob::onConfig(T, Zoo[0], true, RunSettings())};

  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(
      remoteOpts({&W}, /*HeartbeatMs=*/0, /*TimeoutMs=*/200));
  std::vector<RunOutcome> Got = Remote->run(One);
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0].Status, RunStatus::Timeout);
  EXPECT_NE(Got[0].Message.find("remote job deadline"), std::string::npos)
      << Got[0].Message;
}

TEST(RemoteBackendTest, CrashIsolationMatchesProcsExactly) {
  // A hard-aborting job kills the worker's *local subprocess slot*,
  // not the worker and not the campaign — and because workers run
  // jobs through the same single-slot process pools, the crash
  // outcome message is byte-identical to --backend=procs.
  WorkerServer W1(loopbackWorker(2));
  ASSERT_TRUE(W1.start());

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 4242;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 4; ++I)
    Jobs.push_back(ExecJob::onConfig(T, Zoo[0], true, RunSettings()));
  Jobs[1].Settings.DebugHardAbort = true;

  std::unique_ptr<ExecBackend> Procs =
      makeBackend(ExecOptions::withBackend(BackendKind::Procs, 2));
  std::vector<RunOutcome> Expected = Procs->run(Jobs);

  std::unique_ptr<ExecBackend> Remote =
      makeRemoteBackend(remoteOpts({&W1}));
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  ASSERT_EQ(Got.size(), 4u);
  EXPECT_EQ(Got[1].Status, RunStatus::Crash);
  EXPECT_EQ(Got[1].Message, Expected[1].Message);
  for (size_t I : {size_t(0), size_t(2), size_t(3)}) {
    EXPECT_EQ(Got[I].Status, Expected[I].Status) << "job " << I;
    EXPECT_EQ(Got[I].OutputHash, Expected[I].OutputHash) << "job " << I;
  }
}

TEST(RemoteBackendTest, UnreachableFleetThrowsInsteadOfHanging) {
  // Nobody listens on this port (we bind it, learn it, and close it).
  unsigned DeadPort = 0;
  int Fd = wire::listenTcp("127.0.0.1", 0, DeadPort);
  ASSERT_GE(Fd, 0);
  ::close(Fd);

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.RemoteWorkers = {"127.0.0.1:" + std::to_string(DeadPort)};
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);

  GenOptions GO;
  GO.Seed = 1;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> One = {ExecJob::onReference(T, true, RunSettings())};
  EXPECT_THROW(Remote->run(One), std::runtime_error);
}

TEST(RemoteBackendTest, RestartedWorkerRejoinsAtTheNextBatch) {
  // Batch 1 runs against a worker which then restarts (new server,
  // same port). Batch 2 must re-dial and complete — the coordinator
  // survives a full fleet bounce between batches.
  auto Server = std::make_unique<WorkerServer>(loopbackWorker(2));
  ASSERT_TRUE(Server->start());
  unsigned Port = Server->port();

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.RemoteWorkers = {"127.0.0.1:" + std::to_string(Port)};
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);

  GenOptions GO;
  GO.Seed = 555;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> Jobs = {
      ExecJob::onConfig(T, Zoo[0], true, RunSettings()),
      ExecJob::onConfig(T, Zoo[1], false, RunSettings())};
  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  expectSameOutcomes(Expected, Remote->run(Jobs), "before restart");

  Server->stop();
  WorkerOptions Reborn = loopbackWorker(2);
  Reborn.Port = Port;
  Server = std::make_unique<WorkerServer>(Reborn);
  ASSERT_TRUE(Server->start());
  ASSERT_EQ(Server->port(), Port);

  expectSameOutcomes(Expected, Remote->run(Jobs), "after restart");
}

//===----------------------------------------------------------------------===//
// Elastic fleet: rendezvous joins, drain, flap, stale generations
//===----------------------------------------------------------------------===//

TEST(RemoteBackendTest, JoinFramesRoundTripAndNameTheirFailure) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::Join,
                               wire::encodeJoin(7, 3)));
  wire::Frame F;
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  ASSERT_EQ(F.Type, wire::FrameType::Join);
  wire::DecodedJoin J = wire::decodeJoin(F);
  EXPECT_EQ(J.CacheGen, 7u);
  EXPECT_EQ(J.Concurrency, 3u);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::JoinAck,
                               wire::encodeJoinAck(false, 9)));
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  ASSERT_EQ(F.Type, wire::FrameType::JoinAck);
  wire::DecodedJoinAck Ack = wire::decodeJoinAck(F);
  EXPECT_FALSE(Ack.Accepted);
  EXPECT_EQ(Ack.CacheGen, 9u);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::FrameType::Leave,
                               wire::encodeLeave()));
  ASSERT_EQ(wire::readFrame(Fds[0], F), wire::ReadStatus::Ok);
  EXPECT_EQ(F.Type, wire::FrameType::Leave);
  EXPECT_TRUE(F.Payload.empty());

  // readFrame's Why out-param names the failed header check — that
  // string picks the structured drop-reason slug.
  WireWriter W;
  W.u32(wire::FrameMagic);
  W.u8(wire::ProtocolVersion + 1);
  W.u8(static_cast<uint8_t>(wire::FrameType::Join));
  W.u8(0);
  W.u8(0);
  W.u32(0);
  ASSERT_TRUE(wire::writeFull(Fds[1], W.buffer().data(), W.buffer().size()));
  std::string Why;
  EXPECT_EQ(wire::readFrame(Fds[0], F, &Why), wire::ReadStatus::Malformed);
  EXPECT_EQ(Why, "version mismatch");

  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(RemoteBackendTest, RendezvousOnlyFleetMatchesInline) {
  // A fleet built from nothing but joins: no --workers at all, two
  // rendezvous workers dial the registry, and the campaign output is
  // byte-identical to inline.
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
  WorkerServer W1(rendezvousWorker(R->port(), 2));
  WorkerServer W2(rendezvousWorker(R->port(), 2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());
  ASSERT_TRUE(waitUntil(
      [&] { return W1.joinsCompleted() == 1 && W2.joinsCompleted() == 1; },
      3000));

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81001;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 40);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  expectSameOutcomes(Expected, Got, "rendezvous-only fleet");
  EXPECT_GT(W1.jobsExecuted() + W2.jobsExecuted(), 0u);
  // Once adopted, joined slots count toward the fleet's concurrency.
  EXPECT_EQ(Remote->concurrency(), 4u);
}

TEST(RemoteBackendTest, WorkerJoiningMidCampaignReceivesJobs) {
  // The campaign starts on one static single-slot worker; a
  // rendezvous worker joins shortly after the batch is dispatched and
  // must be adopted at a dispatch boundary and pull real jobs.
  WorkerServer Static(loopbackWorker(1));
  ASSERT_TRUE(Static.start());
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81002;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 200);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  ExecOptions O = remoteOpts({&Static});
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);

  WorkerServer Late(rendezvousWorker(R->port(), 2));
  std::thread Joiner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(Late.start());
  });
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  Joiner.join();

  expectSameOutcomes(Expected, Got, "mid-campaign join");
  EXPECT_GE(Late.joinsCompleted(), 1u);
  EXPECT_GT(Late.jobsExecuted(), 0u)
      << "the joined worker never received a job";
}

TEST(RemoteBackendTest, DrainingWorkerFinishesItsWindowWithZeroRequeues) {
  // A graceful leave: the draining worker announces it, finishes its
  // in-flight window, and hands the rest of the campaign back — no
  // job is requeued, nothing is lost, output is byte-identical.
  WorkerServer Static(loopbackWorker(2));
  ASSERT_TRUE(Static.start());
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
  WorkerOptions DO = rendezvousWorker(R->port(), 2);
  DO.DrainAfterJobs = 6;
  WorkerServer Draining(DO);
  ASSERT_TRUE(Draining.start());
  ASSERT_TRUE(waitUntil([&] { return Draining.joinsCompleted() == 1; }, 3000));

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81003;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 60);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  ExecOptions O = remoteOpts({&Static});
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);
  FleetCounters F0 = fleetCounters();
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  FleetCounters F1 = fleetCounters();

  expectSameOutcomes(Expected, Got, "draining worker");
  EXPECT_TRUE(waitUntil([&] { return Draining.drained(); }, 3000))
      << "the drain never completed";
  EXPECT_EQ(F1.Requeues - F0.Requeues, 0u)
      << "a graceful drain must not requeue anything";
  EXPECT_EQ(F1.Leaves - F0.Leaves, 1u);
  EXPECT_EQ(F1.Joins - F0.Joins, 1u);
}

TEST(RemoteBackendTest, FlappingWorkerNeverCorruptsReassembly) {
  // A worker cycling die/redial: each flap kills its in-flight window
  // (requeued, completed elsewhere or on the rejoined link before the
  // next flap), and submission-index reassembly keeps the output
  // byte-identical to inline. FlapAfterJobs (9) is above the in-flight
  // window (2 x 2 slots) — the constraint WorkerOptions documents.
  WorkerServer Static(loopbackWorker(2));
  ASSERT_TRUE(Static.start());
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
  WorkerOptions FO = rendezvousWorker(R->port(), 2);
  FO.FlapAfterJobs = 9;
  WorkerServer Flapper(FO);
  ASSERT_TRUE(Flapper.start());
  ASSERT_TRUE(waitUntil([&] { return Flapper.joinsCompleted() == 1; }, 3000));

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81004;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 80);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  ExecOptions O = remoteOpts({&Static});
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);
  FleetCounters F0 = fleetCounters();
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  FleetCounters F1 = fleetCounters();

  expectSameOutcomes(Expected, Got, "flapping worker");
  EXPECT_GE(F1.Evictions - F0.Evictions, 1u)
      << "the flap was never observed by the coordinator";
  EXPECT_GE(Flapper.joinsCompleted(), 2u)
      << "the flapper never redialled";
}

TEST(RemoteBackendTest, StaleGenerationJoinIsRejectedThenAccepted) {
  // A worker announcing a stale cache generation is refused at the
  // registry (join-ack accepted=0, with the current generation), and
  // its redial with the corrected generation is accepted — the
  // campaign then runs normally on it.
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);
  WorkerOptions SO = rendezvousWorker(R->port(), 2);
  SO.StaleJoins = 1;
  WorkerServer W(SO);
  ASSERT_TRUE(W.start());
  ASSERT_TRUE(waitUntil([&] { return W.joinsCompleted() == 1; }, 5000))
      << "the corrected rejoin never landed";
  EXPECT_EQ(R->joinsRejected(), 1u);
  EXPECT_EQ(R->joinsAccepted(), 1u);

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81005;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 8);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);
  expectSameOutcomes(Expected, Remote->run(Jobs), "post-stale rejoin");
}

TEST(RemoteBackendTest, ChurnScheduleMatchesInline) {
  // The acceptance scenario: a campaign that starts on one static
  // worker, gains two rendezvous joiners mid-run, loses one to
  // DieAfterJobs and the other to a graceful drain — and still
  // produces byte-identical output.
  WorkerServer Static(loopbackWorker(1));
  ASSERT_TRUE(Static.start());
  std::shared_ptr<FleetRegistry> R = makeFleetRegistry("127.0.0.1", 0);

  std::vector<DeviceConfig> Zoo = smallZoo();
  GenOptions GO;
  GO.Seed = 81006;
  TestCase T = TestCase::fromGenerated(generateKernel(GO));
  std::vector<ExecJob> Jobs = churnBatch(T, Zoo, 200);

  InlineBackend Reference;
  std::vector<RunOutcome> Expected = Reference.run(Jobs);

  WorkerOptions DieOpts = rendezvousWorker(R->port(), 2);
  DieOpts.DieAfterJobs = 7;
  WorkerOptions DrainOpts = rendezvousWorker(R->port(), 2);
  DrainOpts.DrainAfterJobs = 9;
  WorkerServer Dying(DieOpts), Draining(DrainOpts);
  std::thread Joiner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(Dying.start());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(Draining.start());
  });

  ExecOptions O = remoteOpts({&Static});
  O.Fleet = R;
  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(O);
  FleetCounters F0 = fleetCounters();
  std::vector<RunOutcome> Got = Remote->run(Jobs);
  FleetCounters F1 = fleetCounters();
  Joiner.join();

  expectSameOutcomes(Expected, Got, "churn schedule");
  EXPECT_GE(F1.Joins - F0.Joins, 2u);
  EXPECT_TRUE(Dying.died());
  EXPECT_GE(F1.Evictions - F0.Evictions, 1u);
}

//===----------------------------------------------------------------------===//
// Remote reduction (the ReductionQueue farm-out path)
//===----------------------------------------------------------------------===//

TEST(RemoteBackendTest, ReductionOverRemoteMatchesInline) {
  // reduceTest schedules candidate probes on its ExecOptions backend;
  // pointing that at the fleet must not change the reduced kernel,
  // the stats, or anything else — this is what lets `hunt --reduce
  // --reduce-backend=remote` farm witness shrinking off-machine.
  WorkerServer W1(loopbackWorker(2)), W2(loopbackWorker(2));
  ASSERT_TRUE(W1.start());
  ASSERT_TRUE(W2.start());

  GenOptions GO;
  GO.Mode = GenMode::Basic;
  GO.Seed = 1029;
  TestCase Witness = TestCase::fromGenerated(generateKernel(GO));
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19),
                                     /*Opt=*/false);

  ReducerOptions Serial;
  Serial.Exec = ExecOptions::withBackend(BackendKind::Inline);
  ReduceStats SerialStats;
  TestCase SerialReduced =
      reduceTest(Witness, Oracle, Serial, &SerialStats);
  ASSERT_TRUE(SerialStats.WitnessWasInteresting);

  ReducerOptions RemoteRO;
  RemoteRO.Exec = remoteOpts({&W1, &W2});
  ReduceStats RemoteStats;
  TestCase RemoteReduced =
      reduceTest(Witness, Oracle, RemoteRO, &RemoteStats);

  EXPECT_EQ(SerialReduced.Source, RemoteReduced.Source);
  EXPECT_EQ(SerialStats.InitialLines, RemoteStats.InitialLines);
  EXPECT_EQ(SerialStats.FinalLines, RemoteStats.FinalLines);
  EXPECT_EQ(SerialStats.CandidatesTried, RemoteStats.CandidatesTried);
  EXPECT_EQ(SerialStats.CandidatesKept, RemoteStats.CandidatesKept);
  EXPECT_EQ(SerialStats.Rounds, RemoteStats.Rounds);
}

#else // platform without POSIX sockets: nothing to test.

TEST(RemoteBackendTest, SkippedWithoutSockets) { GTEST_SKIP(); }

#endif
