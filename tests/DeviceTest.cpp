//===- DeviceTest.cpp - Configuration zoo and gallery replay ------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Replays every Figure 1/2 gallery kernel against the simulated zoo:
/// the clean reference must produce the documented correct value and
/// each annotated (configuration, opt) must misbehave in the
/// documented way. This is the end-to-end check that the 21
/// configurations genuinely exhibit the paper's bugs.
///
//===----------------------------------------------------------------------===//

#include "corpus/Gallery.h"
#include "device/DeviceConfig.h"
#include "device/Driver.h"

#include <gtest/gtest.h>

using namespace clfuzz;

TEST(DeviceTest, RegistryHas21Configurations) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  ASSERT_EQ(Registry.size(), 21u);
  for (size_t I = 0; I != Registry.size(); ++I)
    EXPECT_EQ(Registry[I].Id, static_cast<int>(I) + 1);
}

TEST(DeviceTest, PaperThresholdSplit) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<int> Above = paperAboveThresholdIds();
  for (const DeviceConfig &C : Registry) {
    bool Expected =
        std::find(Above.begin(), Above.end(), C.Id) != Above.end();
    EXPECT_EQ(C.PaperAboveThreshold, Expected) << "config " << C.Id;
  }
}

TEST(DeviceTest, LotteriesAreDeterministic) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Amd = configById(Registry, 5);
  TestCase T;
  T.Name = "determinism probe";
  T.Source = "kernel void k(global ulong *out) {\n"
             "  out[get_global_id(0)] = 7;\n"
             "}\n";
  T.Range.Global[0] = 4;
  T.Range.Local[0] = 4;
  BufferSpec Out;
  Out.InitBytes.assign(32, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  RunOutcome First = runTestOnConfig(T, Amd, true);
  for (int I = 0; I != 5; ++I) {
    RunOutcome Again = runTestOnConfig(T, Amd, true);
    EXPECT_EQ(Again.Status, First.Status);
    EXPECT_EQ(Again.OutputHash, First.OutputHash);
  }
}

namespace {

class GalleryReplay
    : public ::testing::TestWithParam<GalleryEntry> {};

std::vector<GalleryEntry> allGalleryEntries() {
  std::vector<GalleryEntry> All = buildFigure1Gallery();
  for (GalleryEntry &E : buildFigure2Gallery())
    All.push_back(std::move(E));
  return All;
}

} // namespace

TEST_P(GalleryReplay, ReferenceIsCorrectAndBuggyConfigsMisbehave) {
  const GalleryEntry &E = GetParam();
  std::vector<DeviceConfig> Registry = buildConfigRegistry();

  // The reference must run the kernel cleanly.
  RunOutcome Ref = runTestOnReference(E.Test, /*Optimize=*/true);
  ASSERT_TRUE(Ref.ok()) << E.Id << ": " << Ref.Message;

  for (const GalleryEntry::Expectation &X : E.Buggy) {
    const DeviceConfig &C = configById(Registry, X.ConfigId);
    RunOutcome O = runTestOnConfig(E.Test, C, X.Opt);
    // Lottery-based crash/build-failure models may pre-empt the
    // mechanical bug; accept those failure classes as "misbehaved".
    if (X.ExpectedStatus != RunStatus::Ok) {
      EXPECT_NE(O.Status, RunStatus::Ok)
          << E.Id << " on config " << X.ConfigId << (X.Opt ? "+" : "-");
      if (O.Status != RunStatus::Crash ||
          X.ExpectedStatus == RunStatus::Crash)
        EXPECT_TRUE(O.Status == X.ExpectedStatus ||
                    O.Status == RunStatus::Crash ||
                    O.Status == RunStatus::BuildFailure)
            << E.Id << " on config " << X.ConfigId << ": got "
            << runStatusName(O.Status) << " (" << O.Message << ")";
      continue;
    }
    if (O.Status != RunStatus::Ok)
      continue; // a lottery fired first; still a misbehaviour
    EXPECT_NE(O.OutputHash, Ref.OutputHash)
        << E.Id << " on config " << X.ConfigId << (X.Opt ? "+" : "-")
        << " should give a wrong result";
    if (X.ExpectedWrongHead0 != 0 && !O.OutputHead.empty())
      EXPECT_EQ(O.OutputHead[0], X.ExpectedWrongHead0)
          << E.Id << " on config " << X.ConfigId;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Figures, GalleryReplay, ::testing::ValuesIn(allGalleryEntries()),
    [](const ::testing::TestParamInfo<GalleryEntry> &Info) {
      std::string Name = "Fig" + Info.param.Id;
      std::string Clean;
      for (char C : Name)
        if (std::isalnum(static_cast<unsigned char>(C)))
          Clean += C;
      return Clean;
    });

TEST(DeviceTest, CleanConfigPassesGallery) {
  // A hypothetical bug-free configuration must compute the reference
  // result for every gallery kernel that runs at all.
  for (const GalleryEntry &E : allGalleryEntries()) {
    RunOutcome A = runTestOnReference(E.Test, false);
    RunOutcome B = runTestOnReference(E.Test, true);
    ASSERT_TRUE(A.ok() && B.ok()) << E.Id;
    EXPECT_EQ(A.OutputHash, B.OutputHash) << E.Id;
  }
}

TEST(DeviceTest, SizeTMixRejectionMatchesPaperMessage) {
  // The configuration-15 front end rejects `int x; x |= gx;` (§6).
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Xeon = configById(Registry, 15);
  TestCase T;
  T.Source = "kernel void k(global ulong *out) {\n"
             "  int x = 1;\n"
             "  x |= get_group_id(0);\n"
             "  out[get_global_id(0)] = x;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);

  RunOutcome O = runTestOnConfig(T, Xeon, true);
  EXPECT_EQ(O.Status, RunStatus::BuildFailure);
  EXPECT_NE(O.Message.find("size_t"), std::string::npos) << O.Message;

  // The reference accepts the same legal program.
  RunOutcome Ref = runTestOnReference(T, true);
  EXPECT_TRUE(Ref.ok()) << Ref.Message;
}

TEST(DeviceTest, AlteraRejectsVectorLogicalOps) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Altera = configById(Registry, 20);
  TestCase T;
  T.Source = "kernel void k(global ulong *out) {\n"
             "  int4 a = (int4)(1, 0, 1, 0);\n"
             "  int4 b = (int4)(1, 1, 0, 0);\n"
             "  int4 c = a && b;\n"
             "  out[get_global_id(0)] = (uint)c.x;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);

  RunOutcome O = runTestOnConfig(T, Altera, false);
  EXPECT_EQ(O.Status, RunStatus::BuildFailure);
  RunOutcome Ref = runTestOnReference(T, false);
  EXPECT_TRUE(Ref.ok()) << Ref.Message;
}
