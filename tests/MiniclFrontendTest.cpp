//===- MiniclFrontendTest.cpp - Lexer/Parser/Sema/Printer tests -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Lexer.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

/// Parses and semantic-checks a source string, expecting success.
void expectParses(const std::string &Source) {
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(Source, Ctx, Diags)) << Diags.str();
  EXPECT_TRUE(checkProgram(Ctx, Diags)) << Diags.str();
}

/// Parses a source string, expecting a front-end failure.
void expectRejects(const std::string &Source) {
  ASTContext Ctx;
  DiagEngine Diags;
  bool Parsed = parseProgram(Source, Ctx, Diags);
  bool Checked = Parsed && checkProgram(Ctx, Diags);
  EXPECT_FALSE(Checked) << "should have been rejected:\n" << Source;
}

} // namespace

TEST(LexerTest, TokenisesOperators) {
  DiagEngine Diags;
  auto Toks = lex("a <<= b >> 3; x->y.z", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_GE(Toks.size(), 11u);
  EXPECT_EQ(Toks[1].Kind, TokKind::LessLessEqual);
  EXPECT_EQ(Toks[3].Kind, TokKind::GreaterGreater);
  EXPECT_EQ(Toks[7].Kind, TokKind::Arrow);
}

TEST(LexerTest, IntegerLiterals) {
  DiagEngine Diags;
  auto Toks = lex("42 0x2a 7u 9L 3UL", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Value, 42u);
  EXPECT_EQ(Toks[1].Value, 42u);
  EXPECT_TRUE(Toks[2].HasUnsignedSuffix);
  EXPECT_TRUE(Toks[3].HasLongSuffix);
  EXPECT_TRUE(Toks[4].HasUnsignedSuffix);
  EXPECT_TRUE(Toks[4].HasLongSuffix);
}

TEST(LexerTest, CommentsAreTrivia) {
  DiagEngine Diags;
  auto Toks = lex("a // line\n/* block\nmore */ b", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 3u); // a, b, eof
  EXPECT_EQ(Toks[0].Spelling, "a");
  EXPECT_EQ(Toks[1].Spelling, "b");
}

TEST(LexerTest, TracksLocations) {
  DiagEngine Diags;
  auto Toks = lex("a\n  b", Diags);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(ParserTest, MinimalKernel) {
  expectParses("kernel void k(global ulong *out) {\n"
               "  out[get_global_id(0)] = 1;\n"
               "}\n");
}

TEST(ParserTest, Figure1aStructKernel) {
  // The AMD struct bug kernel from Figure 1(a) of the paper.
  expectParses("struct S { char a; short b; };\n"
               "kernel void k(global ulong *out) {\n"
               "  struct S s = { 1, 1 };\n"
               "  out[get_global_id(0)] = s.a + s.b;\n"
               "}\n");
}

TEST(ParserTest, Figure1bTypedefVolatileField) {
  // Figure 1(b): typedef struct with a volatile field and struct copy.
  expectParses(
      "typedef struct {\n"
      "  short a; int b; volatile char c;\n"
      "  int d; int e; short f[10];\n"
      "} S;\n"
      "kernel void k(global ulong *out) {\n"
      "  S s; S *p = &s;\n"
      "  S t = {0,0,0,0,0, {0,0,0,0,0,0,0,1,0,0}};\n"
      "  s = t; out[get_global_id(0)] = p->f[7];\n"
      "}\n");
}

TEST(ParserTest, Figure1dBarrierAndFunction) {
  expectParses("typedef struct { int x; int y; } S;\n"
               "void f(S *p) { p->x = 2; }\n"
               "kernel void k(global ulong *out) {\n"
               "  S s = { 1, 1 }; barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  f(&s); out[get_global_id(0)] = s.x + s.y;\n"
               "}\n");
}

TEST(ParserTest, Figure2cForwardDeclaration) {
  expectParses("int f();\n"
               "void g(int *p) { barrier(CLK_LOCAL_MEM_FENCE); *p = f(); }\n"
               "void h(int *p) { g(p); }\n"
               "int f() { barrier(CLK_LOCAL_MEM_FENCE); return 1; }\n"
               "kernel void k(global ulong *out) {\n"
               "  int x = 0; h(&x); out[get_global_id(0)] = x;\n"
               "}\n");
}

TEST(ParserTest, Figure2fCommaOperator) {
  expectParses("kernel void k(global ulong *out) {\n"
               "  short x = 1; uint y;\n"
               "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
               "  out[get_global_id(0)] = y;\n"
               "}\n");
}

TEST(ParserTest, VectorConstructAndSwizzle) {
  expectParses("kernel void k(global ulong *out) {\n"
               "  int4 v = (int4)((int2)(1, 1), 1, 1);\n"
               "  int2 w = v.xy;\n"
               "  out[get_global_id(0)] = v.w + w.y + v.s0;\n"
               "}\n");
}

TEST(ParserTest, RotateVectorBuiltin) {
  // Figure 2(b) rotate kernel.
  expectParses(
      "kernel void k(global ulong *out) {\n"
      "  out[get_global_id(0)] = rotate((uint2)(1, 1), (uint2)(0, 0)).x;\n"
      "}\n");
}

TEST(ParserTest, VolatilePointerField) {
  // Figure 2(d): `int * volatile * b` member.
  expectParses("typedef struct { int a; int * volatile * b; int c; } S;\n"
               "kernel void k(global ulong *out) {\n"
               "  S s = { 1, 0, 0 };\n"
               "  out[get_global_id(0)] = s.a;\n"
               "}\n");
}

TEST(ParserTest, UnionInitialisation) {
  // Figure 2(a)-style nested union initialisation.
  expectParses(
      "struct S2 { short c; long d; };\n"
      "union U { uint a; struct S2 b; };\n"
      "struct T { union U u[1]; ulong x; ulong y; };\n"
      "kernel void k(global ulong *out, global int *in) {\n"
      "  struct T c;\n"
      "  struct T t = { {{1}}, in[get_global_id(0)], in[get_global_id(1)] };\n"
      "  c = t;\n"
      "  ulong total = 0;\n"
      "  for (int i = 0; i < 1; i++) total += c.u[i].a;\n"
      "  out[get_global_id(0)] = total;\n"
      "}\n");
}

TEST(ParserTest, LocalMemoryAndAtomics) {
  expectParses(
      "kernel void k(global ulong *out) {\n"
      "  local uint counter[4];\n"
      "  local uint A[64];\n"
      "  if (atomic_inc(&counter[0]) == 2) { }\n"
      "  atomic_add(&A[1], 3u);\n"
      "  barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = A[1];\n"
      "}\n");
}

TEST(ParserTest, MultiDimensionalArrays) {
  expectParses("typedef struct { int a; int *b; ulong c[9][9][3]; } S;\n"
               "kernel void k(global ulong *out) {\n"
               "  S s; S *p = &s; S t = { 0, &p->a, { { { 0 } } } };\n"
               "  s = t;\n"
               "  out[get_global_id(0)] = p->c[0][0][1];\n"
               "}\n");
}

TEST(ParserTest, RejectsUnknownIdentifier) {
  expectRejects("kernel void k(global ulong *out) { out[0] = nope; }");
}

TEST(ParserTest, RejectsVectorTypeMismatch) {
  expectRejects("kernel void k(global ulong *out) {\n"
                "  int4 a = (int4)(1, 2, 3, 4);\n"
                "  uint4 b = (uint4)(1, 2, 3, 4);\n"
                "  int4 c = a + b;\n"
                "  out[0] = c.x;\n"
                "}\n");
}

TEST(ParserTest, RejectsRecursion) {
  expectRejects("int f(int x) { return f(x); }\n"
                "kernel void k(global ulong *out) { out[0] = f(1); }\n");
}

TEST(ParserTest, RejectsMutualRecursion) {
  expectRejects("int g(int x);\n"
                "int f(int x) { return g(x); }\n"
                "int g(int x) { return f(x); }\n"
                "kernel void k(global ulong *out) { out[0] = f(1); }\n");
}

TEST(ParserTest, RejectsBreakOutsideLoop) {
  expectRejects("kernel void k(global ulong *out) { break; }");
}

TEST(ParserTest, RejectsPrivatePointerKernelParam) {
  expectRejects("kernel void k(int *p) { *p = 1; }");
}

TEST(ParserTest, RejectsTwoKernels) {
  expectRejects("kernel void k1() { }\nkernel void k2() { }\n");
}

TEST(ParserTest, RejectsSizeof) {
  expectRejects(
      "kernel void k(global ulong *out) { out[0] = sizeof(int); }");
}

TEST(PrinterTest, RoundTripPreservesSemantics) {
  // Print, reparse and reprint; the second and third prints must agree
  // (printer output is a fixed point of parse-then-print).
  const std::string Source =
      "struct S { char a; short b; };\n"
      "int f(int x) { return x + 1; }\n"
      "kernel void k(global ulong *out) {\n"
      "  struct S s = { 1, 1 };\n"
      "  int4 v = (int4)(1, 2, 3, 4);\n"
      "  for (int i = 0; i < 4; i++) s.b += f(i);\n"
      "  out[get_global_id(0)] = s.a + s.b + v.w;\n"
      "}\n";
  ASTContext Ctx1;
  DiagEngine Diags1;
  ASSERT_TRUE(parseProgram(Source, Ctx1, Diags1)) << Diags1.str();
  std::string Printed1 = printProgram(Ctx1.program(), Ctx1.types());

  ASTContext Ctx2;
  DiagEngine Diags2;
  ASSERT_TRUE(parseProgram(Printed1, Ctx2, Diags2))
      << Diags2.str() << "\n--- printed ---\n"
      << Printed1;
  std::string Printed2 = printProgram(Ctx2.program(), Ctx2.types());
  EXPECT_EQ(Printed1, Printed2);
}

TEST(PrinterTest, EmitsBarrierFlags) {
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram("kernel void k() {\n"
                           "  barrier(CLK_LOCAL_MEM_FENCE | "
                           "CLK_GLOBAL_MEM_FENCE);\n"
                           "}\n",
                           Ctx, Diags));
  std::string Out = printProgram(Ctx.program(), Ctx.types());
  EXPECT_NE(Out.find("CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE"),
            std::string::npos);
}

TEST(PrinterTest, NegativeLiteralsPrintReadably) {
  ASTContext Ctx;
  Expr *E = Ctx.intLit(static_cast<uint64_t>(-1), Ctx.types().intTy());
  EXPECT_EQ(printExpr(E), "-1");
}

TEST(PrinterTest, PrecedenceParenthesisation) {
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram("kernel void k(global ulong *out) {\n"
                           "  out[0] = (1 + 2) * 3;\n"
                           "}\n",
                           Ctx, Diags));
  std::string Out = printProgram(Ctx.program(), Ctx.types());
  EXPECT_NE(Out.find("(1 + 2) * 3"), std::string::npos);
}
