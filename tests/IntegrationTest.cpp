//===- IntegrationTest.cpp - Cross-module integration tests -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Integration coverage across the full stack: printer round-trip
/// fixpoints over generated kernels, campaign drivers, the simulated
/// driver's front-end defect checks, the EMI-sensitive DCE defect, and
/// VM launch validation.
///
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "oracle/Campaign.h"
#include "opt/Pass.h"
#include "vm/Codegen.h"

#include <gtest/gtest.h>

using namespace clfuzz;

//===----------------------------------------------------------------------===//
// Printer round-trip over generated kernels (parameterised property)
//===----------------------------------------------------------------------===//

namespace {

class RoundTrip : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RoundTrip, PrintParsePrintIsAFixpoint) {
  GenOptions GO;
  GO.Mode = static_cast<GenMode>(GetParam() % NumGenModes);
  GO.Seed = 4242 + GetParam();
  GO.NumEmiBlocks = GetParam() % 3;
  GeneratedKernel K = generateKernel(GO);

  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(K.Source, Ctx, Diags))
      << Diags.str() << "\n" << K.Source;
  std::string Printed = printProgram(Ctx.program(), Ctx.types());

  ASTContext Ctx2;
  DiagEngine Diags2;
  ASSERT_TRUE(parseProgram(Printed, Ctx2, Diags2)) << Diags2.str();
  EXPECT_EQ(Printed, printProgram(Ctx2.program(), Ctx2.types()))
      << "printer output is not a parse/print fixpoint";
}

INSTANTIATE_TEST_SUITE_P(GeneratedKernels, RoundTrip,
                         ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, DisassemblerCoversCompiledKernels) {
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = 5;
  GeneratedKernel K = generateKernel(GO);
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(K.Source, Ctx, Diags));
  CodegenResult CR = compileToBytecode(Ctx, {});
  ASSERT_TRUE(CR.Ok) << CR.Error;
  std::string Asm = disassemble(CR.Module);
  EXPECT_NE(Asm.find("[kernel]"), std::string::npos);
  EXPECT_NE(Asm.find("barrier"), std::string::npos);
  EXPECT_NE(Asm.find("local_arena"), std::string::npos);
  EXPECT_GT(Asm.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// Campaign drivers
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, DifferentialCampaignProducesSaneCounts) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Two = {configById(Registry, 1),
                                   configById(Registry, 19)};
  CampaignSettings S;
  S.KernelsPerMode = 3;
  S.SeedBase = 42424;
  std::vector<ModeTable> Tables =
      runDifferentialCampaign(Two, {GenMode::Basic}, S);
  ASSERT_EQ(Tables.size(), 1u);
  EXPECT_EQ(Tables[0].NumTests, 3u);
  // Every (config, opt) cell accounts for every test.
  for (const auto &[Key, Counts] : Tables[0].Cells)
    EXPECT_EQ(Counts.total(), Tables[0].NumTests)
        << "config " << Key.ConfigId << (Key.Opt ? "+" : "-");
  EXPECT_EQ(Tables[0].Cells.size(), 4u);
}

TEST(IntegrationTest, CampaignProgressCallbackFires) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> One = {configById(Registry, 1)};
  CampaignSettings S;
  S.KernelsPerMode = 2;
  S.SeedBase = 777;
  unsigned Calls = 0;
  S.Progress = [&Calls](unsigned Done, unsigned Total) {
    ++Calls;
    EXPECT_LE(Done, Total);
  };
  runDifferentialCampaign(One, {GenMode::Basic}, S);
  EXPECT_EQ(Calls, 2u);
}

//===----------------------------------------------------------------------===//
// Driver front-end defect checks
//===----------------------------------------------------------------------===//

namespace {

TestCase tinyTest(const std::string &Source) {
  TestCase T;
  T.Source = Source;
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

} // namespace

TEST(IntegrationTest, CompileHangTriggersOnConstantTrueLoops) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &IntelGpu = configById(Registry, 7);
  // for(;;) with no condition is also a constant-true loop.
  TestCase T = tinyTest("kernel void k(global ulong *out) {\n"
                        "  if (out[0] > 100u) { for (;;) { } }\n"
                        "  out[0] = 1;\n"
                        "}\n");
  RunOutcome O = runTestOnConfig(T, IntelGpu, false);
  EXPECT_EQ(O.Status, RunStatus::Timeout);
  // The loop never executes, so the reference is fine.
  EXPECT_TRUE(runTestOnReference(T, false).ok());
}

TEST(IntegrationTest, SlowStructBarrierCompileNeedsBoth) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  const DeviceConfig &Phi = configById(Registry, 18);
  // Big struct, no barrier: compiles fine.
  TestCase NoBarrier =
      tinyTest("typedef struct { ulong c[4][4]; } S;\n"
               "kernel void k(global ulong *out) {\n"
               "  S s; s.c[0][1] = 7;\n"
               "  out[0] = s.c[0][1];\n"
               "}\n");
  EXPECT_EQ(runTestOnConfig(NoBarrier, Phi, true).Status, RunStatus::Ok);
  // Big struct plus barrier: prohibitively slow (timeout).
  TestCase WithBarrier =
      tinyTest("typedef struct { ulong c[4][4]; } S;\n"
               "kernel void k(global ulong *out) {\n"
               "  S s; s.c[0][1] = 7;\n"
               "  barrier(CLK_LOCAL_MEM_FENCE);\n"
               "  out[0] = s.c[0][1];\n"
               "}\n");
  EXPECT_EQ(runTestOnConfig(WithBarrier, Phi, true).Status,
            RunStatus::Timeout);
}

//===----------------------------------------------------------------------===//
// The EMI-sensitive DCE defect
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, EmiDceDefectDropsSuccessorStatement) {
  const std::string Source =
      "kernel void k(global ulong *out, global int *dead) {\n"
      "  ulong acc = 5;\n"
      "  if (dead[3] < dead[1]) { int ghost = 1; }\n"
      "  acc = 99;\n" // the statement the defect eats
      "  out[get_global_id(0)] = acc;\n"
      "}\n";

  auto RunWith = [&](double Rate) {
    ASTContext Ctx;
    DiagEngine Diags;
    EXPECT_TRUE(parseProgram(Source, Ctx, Diags));
    PassOptions PO = PassOptions::o0();
    PO.EmiDceBugRate = Rate;
    PO.BugSalt = 0x1234;
    PassManager PM = buildPipeline(PO, Ctx);
    PM.run(Ctx);
    return printProgram(Ctx.program(), Ctx.types());
  };

  // Rate 1: the dead block vanishes and so does `acc = 99`.
  std::string Buggy = RunWith(1.0);
  EXPECT_EQ(Buggy.find("dead[3]"), std::string::npos) << Buggy;
  EXPECT_EQ(Buggy.find("acc = 99"), std::string::npos) << Buggy;
  // Rate ~0 never drops the successor (the clean-up itself may run).
  std::string Clean = RunWith(1e-12);
  EXPECT_NE(Clean.find("acc = 99"), std::string::npos) << Clean;
}

TEST(IntegrationTest, EmiDceDefectIgnoresLiveBlocks) {
  // A block with a side effect is not "observably dead": it must
  // survive, successor included.
  const std::string Source =
      "kernel void k(global ulong *out, global int *dead) {\n"
      "  ulong acc = 5;\n"
      "  if (dead[3] < dead[1]) { out[1] = 1; }\n"
      "  acc = 99;\n"
      "  out[get_global_id(0)] = acc;\n"
      "}\n";
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(Source, Ctx, Diags));
  PassOptions PO = PassOptions::o0();
  PO.EmiDceBugRate = 1.0;
  PassManager PM = buildPipeline(PO, Ctx);
  PM.run(Ctx);
  std::string Out = printProgram(Ctx.program(), Ctx.types());
  EXPECT_NE(Out.find("dead[3]"), std::string::npos);
  EXPECT_NE(Out.find("acc = 99"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Launch validation and host helpers
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, InvalidGeometryIsRejected) {
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(
      "kernel void k(global ulong *out) { out[0] = 1; }", Ctx, Diags));
  CodegenResult CR = compileToBytecode(Ctx, {});
  ASSERT_TRUE(CR.Ok);

  std::vector<Buffer> Buffers(1);
  Buffers[0].Bytes.assign(64, 0);
  std::vector<KernelArg> Args = {KernelArg::buffer(0)};

  LaunchOptions LO;
  LO.Range.Global[0] = 10;
  LO.Range.Local[0] = 3; // does not divide 10
  EXPECT_EQ(launchKernel(CR.Module, Buffers, Args, LO).Status,
            LaunchStatus::InvalidLaunch);

  LO.Range.Local[0] = 2; // divides: now valid
  EXPECT_EQ(launchKernel(CR.Module, Buffers, Args, LO).Status,
            LaunchStatus::Success);
}

TEST(IntegrationTest, ArgumentCountMismatchIsRejected) {
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(
      "kernel void k(global ulong *out, global int *extra) {\n"
      "  out[0] = extra[0];\n"
      "}",
      Ctx, Diags));
  CodegenResult CR = compileToBytecode(Ctx, {});
  ASSERT_TRUE(CR.Ok);
  std::vector<Buffer> Buffers(1);
  Buffers[0].Bytes.assign(8, 0);
  std::vector<KernelArg> Args = {KernelArg::buffer(0)}; // one missing
  LaunchOptions LO;
  EXPECT_EQ(launchKernel(CR.Module, Buffers, Args, LO).Status,
            LaunchStatus::InvalidLaunch);
}

TEST(IntegrationTest, BufferScalarRoundTrip) {
  Buffer B;
  B.Bytes.assign(16, 0);
  B.writeScalar(3, 4, 0xdeadbeef);
  EXPECT_EQ(B.readScalar(3, 4), 0xdeadbeefull);
  B.writeScalar(8, 8, 0x0123456789abcdefULL);
  EXPECT_EQ(B.readScalar(8, 8), 0x0123456789abcdefULL);
  EXPECT_EQ(B.readScalar(8, 2), 0xcdefull);
}
