//===- OutcomeCacheTest.cpp - Content-addressed outcome cache suite ----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Pins the outcome cache's contract (exec/OutcomeCache.h,
// docs/caching.md): cache hits are observationally invisible —
// campaign cells, crash/timeout outcomes, whole reductions and
// campaign tables are byte-identical with the cache off, in memory or
// on disk, on every backend — while identical descriptors coalesce in
// flight, disk entries from another format version or torn writes are
// rejected in favour of re-execution, remote workers answer repeated
// descriptors from their own cache, and a coordinator announcing a
// new cache generation drops a worker's stale entries. The
// concurrency tests run TSan-clean (the cache is shared by
// reduction-queue workers and remote executor slots).
//
//===----------------------------------------------------------------------===//

#include "exec/JobSerialize.h"
#include "exec/OutcomeCache.h"
#include "exec/Pipeline.h"
#include "device/DeviceConfig.h"
#include "oracle/Campaign.h"
#include "oracle/Reducer.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

using namespace clfuzz;

namespace {

/// A fresh private directory under the system temp dir, removed on
/// destruction.
struct TempDir {
  std::filesystem::path Path;

  TempDir() {
    static int Counter = 0;
    Path = std::filesystem::temp_directory_path() /
           ("clfuzz-octest-" + std::to_string(::testing::UnitTest::GetInstance()
                                                  ->random_seed()) +
            "-" + std::to_string(Counter++));
    std::filesystem::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

TestCase kernelFor(uint64_t Seed) {
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = Seed;
  return TestCase::fromGenerated(generateKernel(GO));
}

std::vector<DeviceConfig> smallZoo() {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  std::vector<DeviceConfig> Zoo;
  for (int Id : {1, 12, 14, 19})
    Zoo.push_back(configById(Registry, Id));
  return Zoo;
}

/// The dedupe-heavy shape campaigns produce: per configuration column
/// the same reference run plus the column's own run.
std::vector<ExecJob> columnBatch(const TestCase &T,
                                 const std::vector<DeviceConfig> &Zoo) {
  std::vector<ExecJob> Jobs;
  for (const DeviceConfig &C : Zoo) {
    Jobs.push_back(ExecJob::onReference(T, false, RunSettings()));
    Jobs.push_back(ExecJob::onConfig(T, C, true, RunSettings()));
  }
  return Jobs;
}

void expectSameOutcomes(const std::vector<RunOutcome> &A,
                        const std::vector<RunOutcome> &B,
                        const std::string &Ctx) {
  ASSERT_EQ(A.size(), B.size()) << Ctx;
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Status, B[I].Status) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHash, B[I].OutputHash) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Message, B[I].Message) << Ctx << " job " << I;
    EXPECT_EQ(A[I].Steps, B[I].Steps) << Ctx << " job " << I;
    EXPECT_EQ(A[I].OutputHead, B[I].OutputHead) << Ctx << " job " << I;
  }
}

std::shared_ptr<OutcomeCache> memCache(size_t BudgetBytes = 64u << 20,
                                       uint64_t Salt = 0) {
  OutcomeCacheOptions CO;
  CO.Mode = CacheMode::Mem;
  CO.MemBudgetBytes = BudgetBytes;
  CO.KeySalt = Salt;
  return makeOutcomeCache(CO);
}

std::shared_ptr<OutcomeCache> diskCache(const std::string &Dir,
                                        uint64_t Salt = 0) {
  OutcomeCacheOptions CO;
  CO.Mode = CacheMode::Disk;
  CO.Dir = Dir;
  CO.KeySalt = Salt;
  return makeOutcomeCache(CO);
}

} // namespace

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

TEST(OutcomeCacheTest, HashDescriptorIsTheFnv64OfCanonicalBytes) {
  TestCase T = kernelFor(4242);
  std::vector<DeviceConfig> Zoo = smallZoo();
  ExecJob Job = ExecJob::onConfig(T, Zoo[1], true, RunSettings());

  std::vector<uint8_t> Bytes = descriptorBytes(Job);
  EXPECT_FALSE(Bytes.empty());
  EXPECT_EQ(hashDescriptor(Job), fnv64(Bytes.data(), Bytes.size()));

  // The fingerprint is a pure function of the descriptor: stable
  // across calls, different for a different cell.
  EXPECT_EQ(hashDescriptor(Job), hashDescriptor(Job));
  ExecJob OtherOpt = ExecJob::onConfig(T, Zoo[1], false, RunSettings());
  EXPECT_NE(hashDescriptor(Job), hashDescriptor(OtherOpt));
  ExecJob Ref = ExecJob::onReference(T, true, RunSettings());
  EXPECT_NE(hashDescriptor(Job), hashDescriptor(Ref));

  // An unsalted cache keys by the canonical fingerprint itself; a
  // salted one (a deadline configured) must not share its key space.
  auto Unsalted = memCache();
  auto Salted = memCache((64u << 20), /*Salt=*/0xfeed);
  EXPECT_EQ(Unsalted->keyOf(Job).Hash, hashDescriptor(Job));
  EXPECT_NE(Salted->keyOf(Job).Hash, Unsalted->keyOf(Job).Hash);
  EXPECT_EQ(Salted->keyOf(Job).Bytes, Bytes);
}

//===----------------------------------------------------------------------===//
// In-memory LRU behaviour
//===----------------------------------------------------------------------===//

TEST(OutcomeCacheTest, MemCacheStoresLooksUpAndCountsStats) {
  auto Cache = memCache();
  TestCase T = kernelFor(7);
  ExecJob Job = ExecJob::onReference(T, false, RunSettings());
  OutcomeCache::Key K = Cache->keyOf(Job);

  RunOutcome Out;
  EXPECT_FALSE(Cache->lookup(K, Out));
  RunOutcome O;
  O.Status = RunStatus::Ok;
  O.OutputHash = 0xabcdef;
  O.Steps = 123;
  Cache->store(K, O);
  ASSERT_TRUE(Cache->lookup(K, Out));
  EXPECT_EQ(Out.OutputHash, 0xabcdefu);
  EXPECT_EQ(Out.Steps, 123u);

  OutcomeCacheStats S = Cache->stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Coalesced, 0u);

  Cache->clear();
  EXPECT_FALSE(Cache->lookup(K, Out));
}

TEST(OutcomeCacheTest, MemCacheEvictsLeastRecentlyUsedUnderBudget) {
  // A budget of 1 MiB split over 16 shards: a few hundred small
  // entries overflow it comfortably.
  auto Cache = memCache(1u << 20);
  TestCase T = kernelFor(11);
  RunOutcome O;
  O.Status = RunStatus::Ok;

  std::vector<OutcomeCache::Key> Keys;
  std::vector<RunSettings> Settings(4096);
  for (size_t I = 0; I != Settings.size(); ++I) {
    Settings[I].SchedulerSeed = I + 1; // distinct descriptors
    Keys.push_back(
        Cache->keyOf(ExecJob::onReference(T, false, Settings[I])));
    O.OutputHash = I;
    Cache->store(Keys.back(), O);
  }
  // The most recent entry must still be resident; the very first must
  // have been evicted (each entry costs > 1 KiB of descriptor bytes,
  // and 4096 of them cannot fit in 1 MiB).
  RunOutcome Out;
  EXPECT_TRUE(Cache->lookup(Keys.back(), Out));
  EXPECT_EQ(Out.OutputHash, Settings.size() - 1);
  EXPECT_FALSE(Cache->lookup(Keys.front(), Out));
}

//===----------------------------------------------------------------------===//
// Byte-identity: cache off / mem / disk, on every backend
//===----------------------------------------------------------------------===//

TEST(OutcomeCacheTest, BatchesAreByteIdenticalWithCacheOffMemAndDisk) {
  TestCase T = kernelFor(20257);
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> Jobs = columnBatch(T, Zoo);

  std::vector<ExecOptions> Matrix;
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Inline));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Threads, 2));
  Matrix.push_back(ExecOptions::withBackend(BackendKind::Procs, 2));

  std::vector<RunOutcome> Expected =
      makeBackend(ExecOptions::withBackend(BackendKind::Inline))->run(Jobs);

  for (ExecOptions Opts : Matrix) {
    std::string Ctx = backendKindName(Opts.Backend);

    Opts.Cache = memCache();
    expectSameOutcomes(Expected, makeBackend(Opts)->run(Jobs),
                       Ctx + "/mem cold");
    // Warm: the same cache serves the whole batch.
    expectSameOutcomes(Expected, makeBackend(Opts)->run(Jobs),
                       Ctx + "/mem warm");
    EXPECT_GT(Opts.Cache->stats().Hits, 0u) << Ctx;

    TempDir Dir;
    Opts.Cache = diskCache(Dir.str());
    expectSameOutcomes(Expected, makeBackend(Opts)->run(Jobs),
                       Ctx + "/disk cold");
    // A *fresh* cache over the same directory: entries must come off
    // disk, not process memory.
    Opts.Cache = diskCache(Dir.str());
    expectSameOutcomes(Expected, makeBackend(Opts)->run(Jobs),
                       Ctx + "/disk reopen");
    EXPECT_GT(Opts.Cache->stats().DiskHits, 0u) << Ctx;
  }
}

TEST(OutcomeCacheTest, CampaignTablesAreIdenticalWithAndWithoutCache) {
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<GenMode> Modes = {GenMode::Basic, GenMode::Barrier};

  auto Run = [&](std::shared_ptr<OutcomeCache> Cache) {
    CampaignSettings S;
    S.KernelsPerMode = 3;
    S.Exec = ExecOptions::withBackend(BackendKind::Threads, 2);
    S.Exec.Cache = std::move(Cache);
    S.BaseGen.MinThreads = 48;
    S.BaseGen.MaxThreads = 128;
    return runDifferentialCampaign(Zoo, Modes, S);
  };

  std::vector<ModeTable> Plain = Run(nullptr);
  auto Cache = memCache();
  std::vector<ModeTable> Cached = Run(Cache);
  std::vector<ModeTable> Warm = Run(Cache); // full replay, all hits

  auto ExpectSameTables = [](const std::vector<ModeTable> &A,
                             const std::vector<ModeTable> &B) {
    ASSERT_EQ(A.size(), B.size());
    for (size_t M = 0; M != A.size(); ++M) {
      EXPECT_EQ(A[M].Mode, B[M].Mode);
      EXPECT_EQ(A[M].NumTests, B[M].NumTests);
      ASSERT_EQ(A[M].Cells.size(), B[M].Cells.size());
      auto IA = A[M].Cells.begin();
      auto IB = B[M].Cells.begin();
      for (; IA != A[M].Cells.end(); ++IA, ++IB) {
        EXPECT_EQ(IA->first.ConfigId, IB->first.ConfigId);
        EXPECT_EQ(IA->first.Opt, IB->first.Opt);
        EXPECT_EQ(IA->second.W, IB->second.W);
        EXPECT_EQ(IA->second.BF, IB->second.BF);
        EXPECT_EQ(IA->second.C, IB->second.C);
        EXPECT_EQ(IA->second.TO, IB->second.TO);
        EXPECT_EQ(IA->second.Pass, IB->second.Pass);
      }
    }
  };
  ExpectSameTables(Plain, Cached);
  ExpectSameTables(Plain, Warm);
  EXPECT_GT(Cache->stats().Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Crash and timeout outcomes are cacheable
//===----------------------------------------------------------------------===//

TEST(OutcomeCacheTest, CrashOutcomesAreServedFromCacheWithoutAFork) {
  TestCase T = kernelFor(5);
  RunSettings Aborting;
  Aborting.DebugHardAbort = true;
  std::vector<ExecJob> Jobs = {ExecJob::onReference(T, false, Aborting)};

  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Procs, 1);
  Opts.Cache = memCache();
  std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);

  std::vector<RunOutcome> First = Backend->run(Jobs);
  ASSERT_EQ(First[0].Status, RunStatus::Crash);
  std::vector<RunOutcome> Second = Backend->run(Jobs);
  expectSameOutcomes(First, Second, "cached crash");
  OutcomeCacheStats S = Opts.Cache->stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST(OutcomeCacheTest, TimeoutOutcomesAreServedFromCacheUnderTheirSalt) {
  TestCase T = kernelFor(6);
  RunSettings Spinning;
  Spinning.DebugSpinMs = 2000;
  std::vector<ExecJob> Jobs = {ExecJob::onReference(T, false, Spinning)};

  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Procs, 1);
  Opts.ProcTimeoutMs = 100;
  // The deadline lives outside the descriptor, so it participates in
  // the key as the salt.
  ASSERT_NE(cacheKeySalt(Opts), 0u);
  Opts.Cache = memCache((64u << 20), cacheKeySalt(Opts));
  std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);

  std::vector<RunOutcome> First = Backend->run(Jobs);
  ASSERT_EQ(First[0].Status, RunStatus::Timeout);
  std::vector<RunOutcome> Second = Backend->run(Jobs);
  expectSameOutcomes(First, Second, "cached timeout");
  EXPECT_EQ(Opts.Cache->stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// In-flight coalescing
//===----------------------------------------------------------------------===//

TEST(OutcomeCacheTest, IdenticalDescriptorsInOneBatchDispatchOnce) {
  TestCase T = kernelFor(77);
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> Jobs;
  for (int I = 0; I != 8; ++I)
    Jobs.push_back(ExecJob::onReference(T, false, RunSettings()));
  Jobs.push_back(ExecJob::onConfig(T, Zoo[0], true, RunSettings()));

  std::vector<RunOutcome> Expected = InlineBackend().run(Jobs);

  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Threads, 4);
  Opts.Cache = memCache();
  std::vector<RunOutcome> Got = makeBackend(Opts)->run(Jobs);
  expectSameOutcomes(Expected, Got, "coalesced batch");

  OutcomeCacheStats S = Opts.Cache->stats();
  EXPECT_EQ(S.Misses, 2u);    // one reference leader + the config cell
  EXPECT_EQ(S.Coalesced, 7u); // the other seven references folded
  EXPECT_EQ(S.Hits, 0u);
}

TEST(OutcomeCacheTest, ConcurrentSharedCacheIsCoherent) {
  // The sharing pattern of reduction-queue jobs and worker slots:
  // many threads, one cache, overlapping key ranges, with a clear()
  // in the middle. TSan-clean; lookups that succeed must return the
  // outcome stored for exactly that descriptor.
  auto Cache = memCache(1u << 20);
  TestCase T = kernelFor(99);

  auto Hammer = [&](unsigned Tid) {
    for (unsigned I = 0; I != 200; ++I) {
      RunSettings S;
      S.SchedulerSeed = (I % 37) + 1; // overlap across threads
      ExecJob Job = ExecJob::onReference(T, (I + Tid) % 2 != 0, S);
      OutcomeCache::Key K = Cache->keyOf(Job);
      RunOutcome Out;
      if (Cache->lookup(K, Out)) {
        EXPECT_EQ(Out.OutputHash, K.Hash); // stored below, per key
      } else {
        RunOutcome O;
        O.Status = RunStatus::Ok;
        O.OutputHash = K.Hash;
        Cache->store(K, O);
      }
    }
  };
  std::vector<std::thread> Threads;
  for (unsigned Tid = 0; Tid != 4; ++Tid)
    Threads.emplace_back(Hammer, Tid);
  Cache->clear();
  for (std::thread &Th : Threads)
    Th.join();
}

//===----------------------------------------------------------------------===//
// Disk store: versioning, corruption, crash-safety
//===----------------------------------------------------------------------===//

namespace {

/// The single entry file in \p Dir (the tests below store exactly one).
std::filesystem::path soleEntry(const TempDir &Dir) {
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path))
    if (E.path().extension() == ".oc")
      return E.path();
  return {};
}

} // namespace

TEST(OutcomeCacheTest, DiskEntryFromAnotherFormatVersionIsRejected) {
  TempDir Dir;
  TestCase T = kernelFor(123);
  ExecJob Job = ExecJob::onReference(T, false, RunSettings());

  {
    auto Cache = diskCache(Dir.str());
    RunOutcome O;
    O.Status = RunStatus::Ok;
    O.OutputHash = 42;
    Cache->store(Cache->keyOf(Job), O);
  }
  std::filesystem::path Entry = soleEntry(Dir);
  ASSERT_FALSE(Entry.empty());

  // Bump the version field in place (u32 at offset 4, little-endian).
  {
    std::FILE *F = std::fopen(Entry.string().c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, 4, SEEK_SET), 0);
    uint8_t NewVersion = OutcomeCache::FormatVersion + 1;
    ASSERT_EQ(std::fwrite(&NewVersion, 1, 1, F), 1u);
    std::fclose(F);
  }

  auto Cache = diskCache(Dir.str());
  RunOutcome Out;
  EXPECT_FALSE(Cache->lookup(Cache->keyOf(Job), Out));
  EXPECT_EQ(Cache->stats().BadEntries, 1u);

  // Re-execution through the wrapper repairs the entry.
  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Inline);
  Opts.Cache = Cache;
  makeBackend(Opts)->run({Job});
  auto Fresh = diskCache(Dir.str());
  EXPECT_TRUE(Fresh->lookup(Fresh->keyOf(Job), Out));
}

TEST(OutcomeCacheTest, CorruptedDiskEntriesFallBackToExecution) {
  TempDir Dir;
  TestCase T = kernelFor(321);
  ExecJob Job = ExecJob::onReference(T, true, RunSettings());

  std::vector<RunOutcome> Expected = InlineBackend().run({Job});

  {
    auto Cache = diskCache(Dir.str());
    ExecOptions Opts = ExecOptions::withBackend(BackendKind::Inline);
    Opts.Cache = Cache;
    makeBackend(Opts)->run({Job});
  }
  std::filesystem::path Entry = soleEntry(Dir);
  ASSERT_FALSE(Entry.empty());

  // Flip a byte in the middle: the checksum must catch it.
  {
    auto Size = std::filesystem::file_size(Entry);
    std::FILE *F = std::fopen(Entry.string().c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, static_cast<long>(Size / 2), SEEK_SET), 0);
    int C = std::fgetc(F);
    ASSERT_NE(C, EOF);
    ASSERT_EQ(std::fseek(F, static_cast<long>(Size / 2), SEEK_SET), 0);
    uint8_t Flipped = static_cast<uint8_t>(C) ^ 0xff;
    ASSERT_EQ(std::fwrite(&Flipped, 1, 1, F), 1u);
    std::fclose(F);
  }

  auto Cache = diskCache(Dir.str());
  ExecOptions Opts = ExecOptions::withBackend(BackendKind::Inline);
  Opts.Cache = Cache;
  std::vector<RunOutcome> Got = makeBackend(Opts)->run({Job});
  expectSameOutcomes(Expected, Got, "corrupt entry re-executes");
  EXPECT_EQ(Cache->stats().BadEntries, 1u);
  EXPECT_EQ(Cache->stats().Misses, 1u);

  // Truncated-to-garbage entry (a torn write that bypassed the
  // temp-then-rename discipline) is also just a miss.
  {
    std::FILE *F = std::fopen(Entry.string().c_str(), "wb");
    ASSERT_NE(F, nullptr);
    std::fputs("zz", F);
    std::fclose(F);
  }
  auto Cache2 = diskCache(Dir.str());
  RunOutcome Out;
  EXPECT_FALSE(Cache2->lookup(Cache2->keyOf(Job), Out));
  EXPECT_EQ(Cache2->stats().BadEntries, 1u);
}

//===----------------------------------------------------------------------===//
// Reduction byte-identity
//===----------------------------------------------------------------------===//

namespace {

/// A small differential witness with deletable noise (the
/// reduction_throughput shape, scaled down).
TestCase noisyWitness() {
  TestCase T;
  T.Name = "noisy comma bug";
  T.Source = "int helper(int v) { return v * 3 + 1; }\n"
             "kernel void k(global ulong *out) {\n"
             "  int noise1 = helper(11);\n"
             "  int pad0 = 1;\n"
             "  for (int i0 = 0; i0 < 3; i0++) pad0 += noise1;\n"
             "  short x = 1; uint y;\n"
             "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
             "  out[get_global_id(0)] = y;\n"
             "}\n";
  T.Range.Global[0] = 1;
  T.Range.Local[0] = 1;
  BufferSpec Out;
  Out.InitBytes.assign(8, 0);
  Out.IsOutput = true;
  T.Buffers.push_back(Out);
  return T;
}

struct ReductionRun {
  std::string Source;
  std::string Trace;
  ReduceStats Stats;
};

ReductionRun reduceWith(std::shared_ptr<OutcomeCache> Cache) {
  std::vector<DeviceConfig> Registry = buildConfigRegistry();
  DifferentialReductionOracle Oracle(configById(Registry, 19), false);

  ReductionRun R;
  ReducerOptions Opts;
  Opts.MaxCandidates = 300;
  Opts.Exec = ExecOptions::withBackend(BackendKind::Threads, 2);
  Opts.Exec.Cache = std::move(Cache);
  Opts.Trace = [&R](const ReduceTraceEvent &E) {
    R.Trace += renderReduceTraceJsonl(E);
  };
  R.Source = reduceTest(noisyWitness(), Oracle, Opts, &R.Stats).Source;
  return R;
}

} // namespace

TEST(OutcomeCacheTest, ReductionsAreByteIdenticalWithCacheOnAndOff) {
  ReductionRun Plain = reduceWith(nullptr);
  ASSERT_TRUE(Plain.Stats.WitnessWasInteresting);

  auto Cache = memCache();
  ReductionRun Cold = reduceWith(Cache);
  // A second reduction of the same witness replays cached probes —
  // the descriptor-level subsumption of the printed-form cache.
  ReductionRun Warm = reduceWith(Cache);

  for (const ReductionRun *R : {&Cold, &Warm}) {
    EXPECT_EQ(Plain.Source, R->Source);
    EXPECT_EQ(Plain.Trace, R->Trace);
    EXPECT_EQ(Plain.Stats.CandidatesTried, R->Stats.CandidatesTried);
    EXPECT_EQ(Plain.Stats.CandidatesKept, R->Stats.CandidatesKept);
    EXPECT_EQ(Plain.Stats.CandidatesSkipped, R->Stats.CandidatesSkipped);
    EXPECT_EQ(Plain.Stats.Rounds, R->Stats.Rounds);
    EXPECT_EQ(Plain.Stats.Escalations, R->Stats.Escalations);
    EXPECT_EQ(Plain.Stats.FinalLines, R->Stats.FinalLines);
  }
  EXPECT_GT(Cache->stats().Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Remote workers: per-worker cache and the hello cache generation
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)

#include "exec/RemoteBackend.h"
#include "exec/WireProtocol.h"
#include "exec/WorkerLoop.h"

#include <unistd.h>

namespace {

ExecOptions remoteOpts(const WorkerServer &Server) {
  ExecOptions O;
  O.Backend = BackendKind::Remote;
  O.RemoteWorkers.push_back("127.0.0.1:" + std::to_string(Server.port()));
  return O;
}

} // namespace

TEST(OutcomeCacheTest, WorkerCacheServesRepeatedDescriptorsWithoutRerun) {
  WorkerOptions WO;
  WO.Jobs = 1; // one slot: executed-vs-served counts are deterministic
  WO.Cache = CacheMode::Mem;
  WorkerServer Server(WO);
  ASSERT_TRUE(Server.start());

  TestCase T = kernelFor(31415);
  std::vector<DeviceConfig> Zoo = smallZoo();
  std::vector<ExecJob> Jobs = columnBatch(T, Zoo);
  const size_t Unique = 1 + Zoo.size(); // one reference + each column

  std::vector<RunOutcome> Expected = InlineBackend().run(Jobs);

  std::unique_ptr<ExecBackend> Remote = makeRemoteBackend(remoteOpts(Server));
  expectSameOutcomes(Expected, Remote->run(Jobs), "worker cache cold");
  EXPECT_EQ(Server.jobsExecuted(), Unique);
  EXPECT_EQ(Server.jobsServedFromCache(), Jobs.size() - Unique);

  // A second campaign (fresh coordinator, same fleet): everything is
  // answered from the worker's cache; nothing re-executes.
  std::unique_ptr<ExecBackend> Again = makeRemoteBackend(remoteOpts(Server));
  expectSameOutcomes(Expected, Again->run(Jobs), "worker cache warm");
  EXPECT_EQ(Server.jobsExecuted(), Unique);
  EXPECT_EQ(Server.jobsServedFromCache(), 2 * Jobs.size() - Unique);

  Server.stop();
}

TEST(OutcomeCacheTest, HelloWithNewCacheGenerationDropsWorkerCache) {
  WorkerOptions WO;
  WO.Jobs = 1;
  WO.Cache = CacheMode::Mem;
  WorkerServer Server(WO);
  ASSERT_TRUE(Server.start());

  TestCase T = kernelFor(2718);
  std::vector<ExecJob> Jobs = {
      ExecJob::onReference(T, false, RunSettings())};

  std::vector<RunOutcome> First =
      makeRemoteBackend(remoteOpts(Server))->run(Jobs);
  EXPECT_EQ(Server.jobsExecuted(), 1u);
  std::vector<RunOutcome> Cached =
      makeRemoteBackend(remoteOpts(Server))->run(Jobs);
  EXPECT_EQ(Server.jobsExecuted(), 1u); // served from cache

  // A coordinator from "another build" announces a different cache
  // generation; the worker must drop its stale entries.
  {
    int Fd = wire::connectTcp("127.0.0.1", Server.port(), 2000);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(wire::writeFrame(Fd, wire::FrameType::Hello,
                                 wire::encodeHello(wire::CacheGeneration + 7)));
    wire::Frame F;
    ASSERT_EQ(wire::readFrame(Fd, F), wire::ReadStatus::Ok);
    ASSERT_EQ(F.Type, wire::FrameType::HelloAck);
    wire::writeFrame(Fd, wire::FrameType::Shutdown, {});
    ::close(Fd);
  }

  std::vector<RunOutcome> AfterClear =
      makeRemoteBackend(remoteOpts(Server))->run(Jobs);
  EXPECT_EQ(Server.jobsExecuted(), 2u); // the cleared cache re-executed
  expectSameOutcomes(First, Cached, "pre-clear");
  expectSameOutcomes(First, AfterClear, "post-clear");

  Server.stop();
}

#endif // sockets
