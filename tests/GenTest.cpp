//===- GenTest.cpp - CLsmith-style generator property tests -----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Property tests over the kernel generator, parameterised by mode and
/// seed (parameterised gtest sweeps). The paper's §4 guarantees are
/// verified dynamically:
///
///  * generation is deterministic in the seed;
///  * every generated kernel passes the independent Sema re-check;
///  * every kernel executes successfully on the clean reference
///    configuration (no traps, no timeouts, *no barrier divergence*);
///  * outputs are invariant under scheduler seeds (the determinism
///    claim for the communicating modes);
///  * outputs are invariant under the optimisation level (which also
///    differentially validates our own pass pipeline on random code).
///
//===----------------------------------------------------------------------===//

#include "device/Driver.h"
#include "gen/Generator.h"
#include "minicl/Parser.h"
#include "minicl/Sema.h"

#include <gtest/gtest.h>

using namespace clfuzz;

namespace {

GenOptions optionsFor(GenMode Mode, uint64_t Seed,
                      unsigned EmiBlocks = 0) {
  GenOptions O;
  O.Mode = Mode;
  O.Seed = Seed;
  O.NumEmiBlocks = EmiBlocks;
  return O;
}

struct ModeSeedCase {
  GenMode Mode;
  uint64_t Seed;
};

std::vector<ModeSeedCase> allCases(unsigned SeedsPerMode) {
  std::vector<ModeSeedCase> Cases;
  for (unsigned M = 0; M != NumGenModes; ++M)
    for (unsigned S = 0; S != SeedsPerMode; ++S)
      Cases.push_back({static_cast<GenMode>(M), 1000 + S * 17 + M});
  return Cases;
}

class GeneratorProperty
    : public ::testing::TestWithParam<ModeSeedCase> {};

} // namespace

TEST(GeneratorTest, DeterministicInSeed) {
  for (unsigned M = 0; M != NumGenModes; ++M) {
    GenOptions O = optionsFor(static_cast<GenMode>(M), 7);
    GeneratedKernel A = generateKernel(O);
    GeneratedKernel B = generateKernel(O);
    EXPECT_EQ(A.Source, B.Source);
    EXPECT_EQ(A.Range.globalLinear(), B.Range.globalLinear());
    ASSERT_EQ(A.Buffers.size(), B.Buffers.size());
    for (size_t I = 0; I != A.Buffers.size(); ++I)
      EXPECT_EQ(A.Buffers[I].InitBytes, B.Buffers[I].InitBytes);
  }
}

TEST(GeneratorTest, DistinctSeedsDiffer) {
  GeneratedKernel A = generateKernel(optionsFor(GenMode::Basic, 1));
  GeneratedKernel B = generateKernel(optionsFor(GenMode::Basic, 2));
  EXPECT_NE(A.Source, B.Source);
}

TEST(GeneratorTest, GeometryRespectsConstraints) {
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    GenOptions O = optionsFor(GenMode::Barrier, Seed);
    GeneratedKernel K = generateKernel(O);
    EXPECT_TRUE(K.Range.valid());
    uint64_t Total = K.Range.globalLinear();
    EXPECT_GE(Total, O.MinThreads);
    EXPECT_LT(Total, O.MaxThreads);
    EXPECT_LE(K.Range.localLinear(), O.MaxGroupSize);
    // Communication modes need at least two work-items per group.
    EXPECT_GE(K.Range.localLinear(), 2u);
  }
}

TEST(GeneratorTest, EmiBlocksAreInjected) {
  GenOptions O = optionsFor(GenMode::All, 11, /*EmiBlocks=*/3);
  GeneratedKernel K = generateKernel(O);
  EXPECT_EQ(K.EmiIds.size(), 3u);
  EXPECT_NE(K.Source.find("dead["), std::string::npos);
  // The dead array buffer exists and is marked.
  bool Found = false;
  for (const BufferSpec &B : K.Buffers)
    Found |= B.IsDeadArray;
  EXPECT_TRUE(Found);
}

TEST_P(GeneratorProperty, PassesSemaAndRoundTrips) {
  const ModeSeedCase &C = GetParam();
  GeneratedKernel K = generateKernel(optionsFor(C.Mode, C.Seed));
  // The printed source must re-parse and re-check: the generator and
  // the front end agree on the language.
  ASTContext Ctx;
  DiagEngine Diags;
  ASSERT_TRUE(parseProgram(K.Source, Ctx, Diags))
      << Diags.str() << "\n" << K.Source;
  EXPECT_TRUE(checkProgram(Ctx, Diags)) << Diags.str();
}

TEST_P(GeneratorProperty, ExecutesCleanlyOnReference) {
  const ModeSeedCase &C = GetParam();
  GeneratedKernel K = generateKernel(optionsFor(C.Mode, C.Seed));
  TestCase T = TestCase::fromGenerated(K);
  RunOutcome R = runTestOnReference(T, /*Optimize=*/false);
  ASSERT_EQ(R.Status, RunStatus::Ok)
      << runStatusName(R.Status) << ": " << R.Message << "\n"
      << K.Source;
}

TEST_P(GeneratorProperty, ScheduleInvariant) {
  const ModeSeedCase &C = GetParam();
  GeneratedKernel K = generateKernel(optionsFor(C.Mode, C.Seed));
  TestCase T = TestCase::fromGenerated(K);
  RunSettings S;
  S.SchedulerSeed = 1;
  RunOutcome A = runTestOnReference(T, false, S);
  ASSERT_EQ(A.Status, RunStatus::Ok) << A.Message;
  for (uint64_t Seed : {99ull, 123456ull}) {
    S.SchedulerSeed = Seed;
    RunOutcome B = runTestOnReference(T, false, S);
    ASSERT_EQ(B.Status, RunStatus::Ok) << B.Message;
    EXPECT_EQ(A.OutputHash, B.OutputHash)
        << "scheduling changed the result of a supposedly "
        << "deterministic kernel:\n"
        << K.Source;
  }
}

TEST_P(GeneratorProperty, OptimisationLevelInvariant) {
  const ModeSeedCase &C = GetParam();
  GeneratedKernel K = generateKernel(optionsFor(C.Mode, C.Seed));
  TestCase T = TestCase::fromGenerated(K);
  RunOutcome O0 = runTestOnReference(T, /*Optimize=*/false);
  RunOutcome O2 = runTestOnReference(T, /*Optimize=*/true);
  ASSERT_EQ(O0.Status, RunStatus::Ok) << O0.Message;
  ASSERT_EQ(O2.Status, RunStatus::Ok) << O2.Message;
  EXPECT_EQ(O0.OutputHash, O2.OutputHash)
      << "our own optimiser miscompiled a generated kernel:\n"
      << K.Source;
}

TEST_P(GeneratorProperty, RaceFreeOnReference) {
  const ModeSeedCase &C = GetParam();
  GeneratedKernel K = generateKernel(optionsFor(C.Mode, C.Seed));
  TestCase T = TestCase::fromGenerated(K);
  RunSettings S;
  S.DetectRaces = true;
  RunOutcome R = runTestOnReference(T, false, S);
  ASSERT_EQ(R.Status, RunStatus::Ok) << R.Message;
  EXPECT_FALSE(R.RaceFound)
      << R.RaceMessage << "\n"
      << K.Source;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GeneratorProperty, ::testing::ValuesIn(allCases(6)),
    [](const ::testing::TestParamInfo<ModeSeedCase> &Info) {
      std::string Name = genModeName(Info.param.Mode);
      for (char &C : Name)
        if (C == ' ')
          C = '_';
      return Name + "_seed" + std::to_string(Info.param.Seed);
    });

TEST(GeneratorTest, EmiKernelsExecuteAndDeadBlocksStayDead) {
  for (uint64_t Seed = 50; Seed != 56; ++Seed) {
    GenOptions O = optionsFor(GenMode::Basic, Seed, /*EmiBlocks=*/3);
    GeneratedKernel K = generateKernel(O);
    TestCase T = TestCase::fromGenerated(K);
    RunOutcome R = runTestOnReference(T, false);
    ASSERT_EQ(R.Status, RunStatus::Ok) << R.Message << "\n" << K.Source;
  }
}
