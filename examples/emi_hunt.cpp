//===- emi_hunt.cpp - Metamorphic (EMI) bug hunting ----------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// EMI testing needs only ONE configuration (§3.2): a base kernel with
/// dead-by-construction blocks is pruned into variants that must all
/// agree. This example hunts optimisation bugs on a single simulated
/// configuration by comparing its variants against each other, then
/// demonstrates injection into a real (benchmark) kernel.
///
//===----------------------------------------------------------------------===//

#include "corpus/Benchmarks.h"
#include "device/DeviceConfig.h"
#include "emi/Emi.h"
#include "oracle/Oracle.h"

#include <cstdio>

using namespace clfuzz;

int main() {
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  const DeviceConfig &Target = configById(Zoo, 12); // Intel i7 CPU

  // --- Part 1: CLsmith+EMI over generated bases (§7.4 style).
  std::printf("hunting on config 12- with EMI variants (no second "
              "compiler needed)...\n");
  unsigned Found = 0;
  for (uint64_t Seed = 500; Seed != 540 && Found < 3; ++Seed) {
    GenOptions GO;
    GO.Mode = GenMode::All;
    GO.Seed = Seed;
    GO.NumEmiBlocks = 3;

    std::vector<RunOutcome> Outs;
    for (const PruneOptions &P : paperPruneSweep(Seed)) {
      TestCase Variant = makeEmiVariant(GO, P);
      Outs.push_back(runTestOnConfig(Variant, Target, false));
    }
    EmiBaseVerdict V = classifyEmiVariants(Outs);
    if (V.Wrong) {
      ++Found;
      std::printf("  base seed %llu: variants disagree -> "
                  "miscompilation on config 12-\n",
                  static_cast<unsigned long long>(Seed));
    }
  }
  std::printf("  %u wrong-code bases found\n\n", Found);

  // --- Part 2: injection into a real kernel (§5, Table 3 style).
  std::printf("injecting dead-by-construction blocks into Rodinia "
              "hotspot...\n");
  for (const Benchmark &B : buildBenchmarkSuite()) {
    if (B.Name != "hotspot")
      continue;
    RunOutcome Base = runTestOnReference(B.Test, true);
    InjectOptions IO;
    IO.Seed = 99;
    IO.NumBlocks = 2;
    IO.Substitutions = true; // bind free variables to host variables
    TestCase Injected;
    DiagEngine Diags;
    if (!injectEmiIntoTest(B.Test, IO, Injected, Diags)) {
      std::printf("injection failed: %s\n", Diags.str().c_str());
      return 1;
    }
    RunOutcome After = runTestOnReference(Injected, true);
    std::printf("  base out-hash:     %016llx\n",
                static_cast<unsigned long long>(Base.OutputHash));
    std::printf("  injected out-hash: %016llx  (%s)\n",
                static_cast<unsigned long long>(After.OutputHash),
                Base.OutputHash == After.OutputHash
                    ? "identical, as EMI requires"
                    : "DIFFERENT - the injector is broken!");
  }
  return 0;
}
