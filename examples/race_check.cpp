//===- race_check.cpp - Auditing kernels for data races ------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The paper wasted "significant effort" reducing benchmark
/// mismatches before discovering they were data races (§2.4). This
/// example shows the workflow that avoids that: before fuzzing with a
/// kernel, audit it with the VM's happens-before race detector and a
/// scheduler-seed sweep.
///
//===----------------------------------------------------------------------===//

#include "corpus/Benchmarks.h"
#include "device/Driver.h"

#include <cstdio>
#include <set>

using namespace clfuzz;

static void audit(const TestCase &Test, const char *Name) {
  RunSettings S;
  S.DetectRaces = true;
  RunOutcome O = runTestOnReference(Test, false, S);
  std::printf("%-10s: ", Name);
  if (!O.ok()) {
    std::printf("failed to run (%s)\n", O.Message.c_str());
    return;
  }
  if (!O.RaceFound) {
    std::printf("race-free; safe to use for compiler testing\n");
    return;
  }
  std::printf("DATA RACE - %s\n", O.RaceMessage.c_str());

  // Is the race benign (stable output) or result-visible?
  std::set<uint64_t> Outputs;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    RunSettings Sweep;
    Sweep.SchedulerSeed = Seed;
    RunOutcome R = runTestOnReference(Test, false, Sweep);
    if (R.ok())
      Outputs.insert(R.OutputHash);
  }
  std::printf("%-10s  schedule sweep: %zu distinct outputs -> %s\n",
              "", Outputs.size(),
              Outputs.size() == 1
                  ? "benign (but still report it upstream!)"
                  : "nondeterministic: unusable as a fuzzing oracle");
}

int main() {
  std::printf("auditing the mini Parboil/Rodinia suite before EMI "
              "testing:\n\n");
  for (const Benchmark &B : buildBenchmarkSuite())
    audit(B.Test, B.Name.c_str());
  std::printf("\nthe paper reported exactly these two races (spmv, "
              "myocyte) to the Parboil and Rodinia developers; both "
              "were confirmed.\n");
  return 0;
}
