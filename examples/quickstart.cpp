//===- quickstart.cpp - clfuzz in 60 lines -------------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The minimal end-to-end flow:
///
///   1. generate a random deterministic OpenCL kernel (CLsmith-style),
///   2. run it on two simulated configurations,
///   3. compare the printed results like the paper's differential
///      oracle does.
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "device/Driver.h"
#include "gen/Generator.h"

#include <cstdio>

using namespace clfuzz;

int main() {
  // 1. Generate one kernel in ALL mode (vectors + barriers + atomics).
  GenOptions GO;
  GO.Mode = GenMode::All;
  GO.Seed = 2040;
  GO.MinThreads = 48;
  GO.MaxThreads = 128; // small grid so even the emulator finishes
  GeneratedKernel Kernel = generateKernel(GO);
  std::printf("generated a %s kernel: %u work-items in groups of %u\n",
              genModeName(Kernel.Mode),
              static_cast<unsigned>(Kernel.Range.globalLinear()),
              static_cast<unsigned>(Kernel.Range.localLinear()));
  std::printf("--- first lines of the kernel source ---\n");
  std::printf("%.400s...\n\n", Kernel.Source.c_str());

  // 2. Run it on two members of the simulated zoo.
  TestCase Test = TestCase::fromGenerated(Kernel);
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  const DeviceConfig &Titan = configById(Zoo, 1);    // NVIDIA GTX Titan
  const DeviceConfig &Oclgrind = configById(Zoo, 19); // the emulator

  RunOutcome A = runTestOnConfig(Test, Titan, /*OptEnabled=*/true);
  RunOutcome B = runTestOnConfig(Test, Oclgrind, /*OptEnabled=*/true);
  std::printf("config  1+ (%s): %s, output hash %016llx\n",
              Titan.Device.c_str(), runStatusName(A.Status),
              static_cast<unsigned long long>(A.OutputHash));
  std::printf("config 19+ (%s): %s, output hash %016llx\n",
              Oclgrind.Device.c_str(), runStatusName(B.Status),
              static_cast<unsigned long long>(B.OutputHash));

  // 3. Differential comparison.
  if (A.ok() && B.ok() && A.OutputHash != B.OutputHash)
    std::printf("\n=> result mismatch: at least one configuration "
                "miscompiled this kernel!\n");
  else
    std::printf("\n=> no disagreement on this kernel; a real campaign "
                "would try thousands (see bench/table4_clsmith).\n");
  return 0;
}
