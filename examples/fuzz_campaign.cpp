//===- fuzz_campaign.cpp - A small differential fuzzing campaign ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Runs a miniature §7.3-style campaign: a batch of BARRIER-mode
/// kernels over four configurations at both optimisation levels, with
/// majority voting, and prints each discovered miscompilation (which
/// configuration deviated and on which kernel seed).
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "gen/Generator.h"
#include "oracle/Oracle.h"

#include <cstdio>

using namespace clfuzz;

int main(int Argc, char **Argv) {
  unsigned NumKernels = Argc > 1 ? std::atoi(Argv[1]) : 30;

  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  std::vector<const DeviceConfig *> Configs = {
      &configById(Zoo, 1), &configById(Zoo, 12), &configById(Zoo, 14),
      &configById(Zoo, 19)};

  std::printf("mini campaign: %u BARRIER kernels x {1, 12, 14, 19} x "
              "{-, +}\n\n",
              NumKernels);

  unsigned Mismatches = 0;
  for (unsigned K = 0; K != NumKernels; ++K) {
    GenOptions GO;
    GO.Mode = GenMode::Barrier;
    GO.Seed = 31337 + K;
    TestCase T = TestCase::fromGenerated(generateKernel(GO));

    std::vector<RunOutcome> Outs;
    std::vector<std::string> Labels;
    for (const DeviceConfig *C : Configs) {
      for (bool Opt : {false, true}) {
        Outs.push_back(runTestOnConfig(T, *C, Opt));
        Labels.push_back(std::to_string(C->Id) + (Opt ? "+" : "-"));
      }
    }
    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    for (size_t I = 0; I != Vs.size(); ++I) {
      if (Vs[I] != Verdict::Wrong)
        continue;
      ++Mismatches;
      std::printf("seed %llu: config %s disagrees with the majority "
                  "(out[0]=%llx)\n",
                  static_cast<unsigned long long>(GO.Seed),
                  Labels[I].c_str(),
                  Outs[I].OutputHead.empty()
                      ? 0ULL
                      : static_cast<unsigned long long>(
                            Outs[I].OutputHead[0]));
    }
  }
  std::printf("\n%u wrong-code observations over %u kernels\n",
              Mismatches, NumKernels);
  std::printf("(each would be reduced with the oracle/Reducer and "
              "reported to the vendor)\n");
  return 0;
}
