//===- fuzz_campaign.cpp - A small differential fuzzing campaign ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Runs a miniature §7.3-style campaign: a batch of BARRIER-mode
/// kernels over four configurations at both optimisation levels, with
/// majority voting, and prints each discovered miscompilation (which
/// configuration deviated and on which kernel seed).
///
/// The campaign is a composition of the streaming pipeline API:
///
///   TestSource  — BARRIER kernels generated in bounded shards
///   ExecBackend — inline | threads | procs (crash-isolated workers)
///   ResultSink  — votes each kernel as its cells arrive
///
///   fuzz_campaign [num_kernels] [backend] [workers] [shard_size]
///
/// e.g. `fuzz_campaign 200 procs 4 32`. The findings are identical
/// for every backend, worker count and shard size — only wall-clock
/// time and fault isolation change.
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "exec/Pipeline.h"
#include "gen/Generator.h"
#include "oracle/Oracle.h"

#include <cstdio>
#include <cstdlib>

using namespace clfuzz;

namespace {

/// Votes per kernel and reports wrong-code observations in seed
/// order. State is one kernel's outcomes — the campaign streams.
class ReportSink final : public ResultSink {
public:
  ReportSink(std::vector<std::string> Labels)
      : Labels(std::move(Labels)) {}

  void consumeTest(size_t TestIndex, const TestCase &,
                   const std::vector<RunOutcome> &Outs) override {
    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    for (size_t I = 0; I != Vs.size(); ++I) {
      if (Vs[I] != Verdict::Wrong)
        continue;
      ++Mismatches;
      std::printf("seed %zu: config %s disagrees with the majority "
                  "(out[0]=%llx)\n",
                  31337 + TestIndex, Labels[I].c_str(),
                  Outs[I].OutputHead.empty()
                      ? 0ULL
                      : static_cast<unsigned long long>(
                            Outs[I].OutputHead[0]));
    }
  }

  std::vector<std::string> Labels;
  unsigned Mismatches = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumKernels = Argc > 1 ? std::atoi(Argv[1]) : 30;
  ExecOptions Opts;
  if (Argc > 2 && !parseBackendKind(Argv[2], Opts.Backend)) {
    std::fprintf(stderr, "unknown backend '%s' (inline, threads, procs)\n",
                 Argv[2]);
    return 2;
  }
  Opts.Threads = Argc > 3 ? std::atoi(Argv[3]) : 1;
  if (Argc > 4)
    Opts.ShardSize = std::atoi(Argv[4]);

  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  std::vector<DeviceConfig> Configs = {
      configById(Zoo, 1), configById(Zoo, 12), configById(Zoo, 14),
      configById(Zoo, 19)};

  std::unique_ptr<ExecBackend> Backend = makeBackend(Opts);
  std::printf("mini campaign: %u BARRIER kernels x {1, 12, 14, 19} x "
              "{-, +} on the %s backend (%u worker(s), shard size "
              "%u)\n\n",
              NumKernels, Backend->name(), Backend->concurrency(),
              Opts.resolvedShardSize());

  // Kernels are generated in shards (never more than one shard alive)
  // and every (kernel, config, opt) cell runs on the backend; results
  // come back keyed by submission index, so the report below is in
  // seed order no matter how the backend schedules.
  GenOptions BaseGen;
  GeneratorSource Source(GenMode::Barrier, BaseGen, 31337, NumKernels,
                         /*Prefilter=*/false, /*Config1=*/nullptr,
                         RunSettings(), *Backend);

  std::vector<std::string> Labels;
  for (const DeviceConfig &C : Configs)
    for (bool Opt : {false, true})
      Labels.push_back(std::to_string(C.Id) + (Opt ? "+" : "-"));
  ReportSink Sink(Labels);

  PipelineStats Stats = runShardedCampaign(
      Source, *Backend, Opts.resolvedShardSize(),
      [&](size_t, const TestCase &T, std::vector<ExecJob> &Jobs) {
        for (const DeviceConfig &C : Configs)
          for (bool Opt : {false, true})
            Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
      },
      Sink);

  std::printf("\n%u wrong-code observations over %zu kernels "
              "(%zu cells in %zu shard(s))\n",
              Sink.Mismatches, Stats.Tests, Stats.Jobs, Stats.Shards);
  std::printf("(each would be reduced with the oracle/Reducer and "
              "reported to the vendor)\n");
  return 0;
}
