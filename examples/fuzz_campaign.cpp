//===- fuzz_campaign.cpp - A small differential fuzzing campaign ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Runs a miniature §7.3-style campaign: a batch of BARRIER-mode
/// kernels over four configurations at both optimisation levels, with
/// majority voting, and prints each discovered miscompilation (which
/// configuration deviated and on which kernel seed).
///
/// The campaign cells run on the ExecutionEngine thread pool:
///
///   fuzz_campaign [num_kernels] [exec_threads]
///
/// exec_threads = 1 (default) is the serial path, 0 uses every core;
/// the findings are identical either way — only wall-clock changes.
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "exec/ExecutionEngine.h"
#include "gen/Generator.h"
#include "oracle/Oracle.h"

#include <cstdio>

using namespace clfuzz;

int main(int Argc, char **Argv) {
  unsigned NumKernels = Argc > 1 ? std::atoi(Argv[1]) : 30;
  unsigned Threads = Argc > 2 ? std::atoi(Argv[2]) : 1;

  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  std::vector<const DeviceConfig *> Configs = {
      &configById(Zoo, 1), &configById(Zoo, 12), &configById(Zoo, 14),
      &configById(Zoo, 19)};

  ExecutionEngine Engine(ExecOptions::withThreads(Threads));
  std::printf("mini campaign: %u BARRIER kernels x {1, 12, 14, 19} x "
              "{-, +} on %u engine thread(s)\n\n",
              NumKernels, Engine.threadCount());

  // Generate the batch (engine work), then submit every campaign cell
  // at once; results come back keyed by submission index, so the
  // report below is in seed order no matter how the pool schedules.
  std::vector<TestCase> Tests(NumKernels);
  Engine.forEachIndex(NumKernels, [&](size_t K) {
    GenOptions GO;
    GO.Mode = GenMode::Barrier;
    GO.Seed = 31337 + K;
    Tests[K] = TestCase::fromGenerated(generateKernel(GO));
  });

  const size_t CellsPerTest = Configs.size() * 2;
  std::vector<ExecJob> Jobs;
  Jobs.reserve(NumKernels * CellsPerTest);
  for (const TestCase &T : Tests)
    for (const DeviceConfig *C : Configs)
      for (bool Opt : {false, true})
        Jobs.push_back(ExecJob::onConfig(T, *C, Opt, RunSettings()));
  std::vector<RunOutcome> Batch = Engine.runBatch(Jobs);

  unsigned Mismatches = 0;
  for (unsigned K = 0; K != NumKernels; ++K) {
    std::vector<RunOutcome> Outs(
        Batch.begin() + K * CellsPerTest,
        Batch.begin() + (K + 1) * CellsPerTest);
    std::vector<std::string> Labels;
    for (const DeviceConfig *C : Configs)
      for (bool Opt : {false, true})
        Labels.push_back(std::to_string(C->Id) + (Opt ? "+" : "-"));

    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    for (size_t I = 0; I != Vs.size(); ++I) {
      if (Vs[I] != Verdict::Wrong)
        continue;
      ++Mismatches;
      std::printf("seed %u: config %s disagrees with the majority "
                  "(out[0]=%llx)\n",
                  31337 + K, Labels[I].c_str(),
                  Outs[I].OutputHead.empty()
                      ? 0ULL
                      : static_cast<unsigned long long>(
                            Outs[I].OutputHead[0]));
    }
  }
  std::printf("\n%u wrong-code observations over %u kernels\n",
              Mismatches, NumKernels);
  std::printf("(each would be reduced with the oracle/Reducer and "
              "reported to the vendor)\n");
  return 0;
}
