//===- reduce_bug.cpp - Automatic test-case reduction --------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The paper notes (§8) that reducing OpenCL miscompilation witnesses
/// by hand is time-consuming and that an automatic reducer "would
/// require a concurrency-aware static analysis to avoid introducing
/// data races". This example finds a real miscompilation in the zoo
/// (the Oclgrind comma bug buried in a generated kernel) and shrinks
/// it with our dynamically-validated reducer, expressing the
/// interestingness test as a backend-schedulable oracle - the same
/// reduction can then run speculatively on a thread pool or
/// fork-isolated under the procs backend, bit-identically.
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "gen/Generator.h"
#include "oracle/Reducer.h"
#include "support/StringUtil.h"

#include <cstdio>

using namespace clfuzz;

int main() {
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  const DeviceConfig &Oclgrind = configById(Zoo, 19);

  // Find a generated kernel that config 19 miscompiles.
  TestCase Witness;
  bool FoundWitness = false;
  for (uint64_t Seed = 1000; Seed != 1200; ++Seed) {
    GenOptions GO;
    GO.Mode = GenMode::Basic;
    GO.Seed = Seed;
    TestCase T = TestCase::fromGenerated(generateKernel(GO));
    RunOutcome Ref = runTestOnReference(T, false);
    RunOutcome Bad = runTestOnConfig(T, Oclgrind, false);
    if (Ref.ok() && Bad.ok() && Ref.OutputHash != Bad.OutputHash) {
      Witness = T;
      FoundWitness = true;
      std::printf("found a miscompilation witness at seed %llu "
                  "(%u source lines)\n",
                  static_cast<unsigned long long>(Seed),
                  countCodeLines(T.Source));
      break;
    }
  }
  if (!FoundWitness) {
    std::printf("no witness found in the probed seed range\n");
    return 1;
  }

  // "Config 19 still miscompiles it", as probe jobs the reducer can
  // schedule on any ExecBackend (swap in BackendKind::Procs to reduce
  // a crashy witness under process isolation - same result).
  DifferentialReductionOracle Oracle(Oclgrind, /*Opt=*/false);

  ReducerOptions Opts;
  Opts.MaxCandidates = 600;
  Opts.Exec = ExecOptions::withBackend(BackendKind::Threads, 2);
  ReduceStats Stats;
  TestCase Reduced = reduceTest(Witness, Oracle, Opts, &Stats);

  std::printf("reduction: %u -> %u lines (%u candidates tried, %u "
              "kept, %u skipped; %u rounds)\n\n",
              Stats.InitialLines, Stats.FinalLines,
              Stats.CandidatesTried, Stats.CandidatesKept,
              Stats.CandidatesSkipped, Stats.Rounds);
  std::printf("--- reduced witness ---\n%s\n", Reduced.Source.c_str());
  std::printf("(every kept step was re-validated to stay race-free "
              "and divergence-free on the reference)\n");
  return 0;
}
